"""Shared infrastructure for the experiment runners.

Each experiment module exposes ``run(quick=True, seed=0)`` returning an
:class:`ExperimentResult`. ``quick`` mode uses few graph pairs per
workload so the whole harness completes in minutes; full mode uses the
per-dataset Table II test-set sizes (hours of pure-Python simulation) —
:func:`workload_size` reads them straight from the dataset registry.

Workload memoization happens at two levels, both keyed by the canonical
:class:`~repro.platforms.runspec.RunSpec` (model, dataset, pair count,
batch size, seed, and the derived quick/full fidelity flag). In-process,
explicit bounded LRU caches make cache keys auditable and eviction
bounded. Across processes, profiled traces persist in the on-disk
:class:`~repro.perf.trace_cache.TraceCache` (``.trace_cache/`` by
default, ``REPRO_TRACE_CACHE`` to relocate or disable), so parallel
harness workers and repeated CLI invocations skip re-profiling.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..analysis.metrics import ResultTable
from ..graphs.datasets import DATASETS, load_dataset
from ..models import build_model
from ..obs.metrics import get_metrics
from ..obs.tracing import span
from ..platforms.runspec import (
    FULL_BATCH,
    QUICK_BATCH,
    QUICK_PAIRS,
    RunSpec,
)
from ..sim.engine import PlatformResult
from ..trace.profiler import BatchTrace, profile_batches
from ..core.api import simulate_traces
from ..perf.trace_cache import default_trace_cache

__all__ = [
    "ExperimentResult",
    "MODEL_ORDER",
    "DATASET_ORDER",
    "QUICK_PAIRS",
    "QUICK_BATCH",
    "FULL_BATCH",
    "FULL_PAIRS_FALLBACK",
    "workload_size",
    "workload_traces",
    "workload_results",
    "traces_for",
    "results_for",
    "clear_workload_caches",
    "prewarm_workloads",
    "write_experiment_data",
]

logger = logging.getLogger("repro.experiments.common")

MODEL_ORDER = ("GMN-Li", "GraphSim", "SimGNN")
DATASET_ORDER = ("AIDS", "COLLAB", "GITHUB", "RD-B", "RD-5K", "RD-12K")

# Full-mode pair count for callers not tied to one dataset (cross-dataset
# scaling studies and the like); per-dataset full runs use the Table II
# test-set sizes via ``workload_size(quick=False, dataset=...)``.
FULL_PAIRS_FALLBACK = 64


class ExperimentResult:
    """Outcome of one experiment: a printable table plus raw data."""

    __slots__ = ("name", "description", "table", "data")

    def __init__(
        self,
        name: str,
        description: str,
        table: ResultTable,
        data: Dict,
    ) -> None:
        self.name = name
        self.description = description
        self.table = table
        self.data = data

    def render(self) -> str:
        return f"== {self.name}: {self.description} ==\n{self.table.render()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentResult({self.name!r})"


class _BoundedLRU:
    """Explicit least-recently-used cache with a hard size bound."""

    __slots__ = ("maxsize", "_entries")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_TRACE_MEMO = _BoundedLRU(maxsize=64)
_RESULT_MEMO = _BoundedLRU(maxsize=256)


def clear_workload_caches() -> None:
    """Drop both in-process memo caches (the disk cache is untouched)."""
    _TRACE_MEMO.clear()
    _RESULT_MEMO.clear()


def traces_for(spec: RunSpec) -> Tuple[BatchTrace, ...]:
    """Profile (and memoize) the workload a spec describes.

    Lookup order: in-process LRU, then the persistent disk cache, then a
    fresh profiling run (which populates both). The spec itself is the
    cache key at every level.
    """
    registry = get_metrics()
    memoized = _TRACE_MEMO.get(spec)
    if memoized is not None:
        if registry is not None:
            registry.inc("harness.trace_memo.hit")
        return memoized
    if registry is not None:
        registry.inc("harness.trace_memo.miss")
    disk = default_trace_cache()
    if disk is not None:
        loaded = disk.load(spec)
        if loaded is not None:
            traces = tuple(loaded)
            _TRACE_MEMO.put(spec, traces)
            return traces
    with span("harness.profile", spec=spec.stem):
        pairs = load_dataset(
            spec.dataset, seed=spec.seed, num_pairs=spec.num_pairs
        )
        model = build_model(
            spec.model, input_dim=pairs[0].target.feature_dim, seed=spec.seed
        )
        traces = tuple(
            profile_batches(model, pairs, batch_size=spec.batch_size)
        )
    if disk is not None:
        try:
            disk.store(spec, traces)
        except OSError as exc:
            # Read-only filesystem, full disk, etc.: the cache is
            # best-effort, but a silent outage would degrade every run
            # to recompute-from-scratch — surface it.
            if registry is not None:
                registry.inc(
                    "harness.trace_cache.store_errors",
                    kind=type(exc).__name__,
                )
            logger.warning(
                "trace cache store failed for %s (%s: %s); "
                "continuing without the on-disk cache",
                spec.stem,
                type(exc).__name__,
                exc,
            )
    _TRACE_MEMO.put(spec, traces)
    return traces


def results_for(
    spec: RunSpec, platforms: Tuple[str, ...]
) -> Dict[str, PlatformResult]:
    """Simulate (and memoize) one workload spec on the given platforms."""
    key = (spec, tuple(platforms))
    registry = get_metrics()
    memoized = _RESULT_MEMO.get(key)
    if memoized is not None:
        if registry is not None:
            registry.inc("harness.result_memo.hit")
        return memoized
    if registry is not None:
        registry.inc("harness.result_memo.miss")
    with span("harness.simulate", spec=spec.stem):
        traces = traces_for(spec)
        results = simulate_traces(traces, platforms)
    disk = default_trace_cache()
    if disk is not None and not disk.sidecar_path(spec).is_file():
        # Persist the schedule/plan summaries this simulation just
        # built, so the next warm load skips schedule construction.
        # Deterministic in the spec, so write-once is enough.
        try:
            disk.store_schedules(spec, traces)
        except OSError:
            logger.warning(
                "schedule sidecar store failed for %s; "
                "warm runs will rebuild schedules",
                spec.stem,
            )
    _RESULT_MEMO.put(key, results)
    return results


def workload_traces(
    model_name: str,
    dataset_name: str,
    num_pairs: int,
    batch_size: int,
    seed: int,
) -> Tuple[BatchTrace, ...]:
    """:func:`traces_for` with the spec assembled from loose arguments."""
    return traces_for(
        RunSpec.make(model_name, dataset_name, num_pairs, batch_size, seed)
    )


def workload_results(
    model_name: str,
    dataset_name: str,
    platforms: Tuple[str, ...],
    num_pairs: int,
    batch_size: int,
    seed: int,
) -> Dict[str, PlatformResult]:
    """:func:`results_for` with the spec assembled from loose arguments."""
    return results_for(
        RunSpec.make(model_name, dataset_name, num_pairs, batch_size, seed),
        platforms,
    )


def prewarm_workloads(
    workloads,
    platforms: Tuple[str, ...],
    num_pairs: Optional[int] = None,
    batch_size: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    quick: bool = True,
) -> None:
    """Simulate many workloads up front — fanned across worker processes
    when ``workers`` > 1 — and prime the in-process memo, so subsequent
    :func:`results_for` calls are cache hits. Worker processes also
    populate the shared disk trace cache.

    ``workloads`` is an iterable of ``(model, dataset)`` pairs or ready
    :class:`RunSpec` values. For pairs, explicit ``num_pairs`` /
    ``batch_size`` apply uniformly; left as ``None``, each dataset gets
    its ``workload_size(quick, dataset)`` size.
    """
    from ..perf.parallel import parallel_run_specs

    specs = []
    for workload in workloads:
        if isinstance(workload, RunSpec):
            specs.append(workload)
            continue
        model_name, dataset_name = workload
        pairs, batch = workload_size(quick, dataset_name)
        if num_pairs is not None:
            pairs = num_pairs
        if batch_size is not None:
            batch = batch_size
        specs.append(
            RunSpec.make(model_name, dataset_name, pairs, batch, seed)
        )
    computed = parallel_run_specs(specs, platforms, workers)
    for spec, results in computed.items():
        _RESULT_MEMO.put((spec, tuple(platforms)), results)


def _json_safe(value):
    """Recursively convert numpy scalars/arrays for ``json.dump``."""
    import numpy as np

    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def write_experiment_data(
    collected: Dict[str, Dict],
    path,
    quick: bool = True,
    seed: int = 0,
) -> "Path":
    """Write collected experiment data as a provenance-stamped artifact.

    ``collected`` maps experiment ids to their serialized payloads
    (description + data); this is the single choke point through which
    every figure artifact leaves ``repro/experiments/``, so each one
    carries the git SHA, timestamp, and metrics-snapshot digest that
    ``repro obs provenance`` validates. Figures regenerated from a dirty
    or unknown tree are then detectable by inspection.
    """
    import json
    from pathlib import Path

    from ..obs.provenance import stamp_payload

    registry = get_metrics()
    payload = _json_safe(dict(collected))
    stamp_payload(
        payload,
        metrics=registry.as_dict() if registry is not None else None,
        generator="repro.experiments",
        extra={
            "experiments": sorted(collected),
            "fidelity": "quick" if quick else "full",
            "seed": int(seed),
        },
    )
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return target


def workload_size(
    quick: bool, dataset: Optional[str] = None
) -> Tuple[int, int]:
    """(num_pairs, batch_size) for the requested fidelity.

    Quick mode is a fixed tiny size. Full mode reads the per-dataset
    Table II test-set size from the dataset registry when ``dataset``
    is given; cross-dataset callers that need one uniform size get
    :data:`FULL_PAIRS_FALLBACK`.
    """
    if quick:
        return QUICK_PAIRS, QUICK_BATCH
    if dataset is not None:
        if dataset not in DATASETS:
            raise KeyError(
                f"unknown dataset {dataset!r}; known: {list(DATASETS)}"
            )
        return DATASETS[dataset].num_pairs, FULL_BATCH
    return FULL_PAIRS_FALLBACK, FULL_BATCH
