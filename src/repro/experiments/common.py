"""Shared infrastructure for the experiment runners.

Each experiment module exposes ``run(quick=True, seed=0)`` returning an
:class:`ExperimentResult`. ``quick`` mode uses few graph pairs per
workload so the whole harness completes in minutes; full mode uses the
Table II test-set sizes (hours of pure-Python simulation).

Workload memoization happens at two levels. In-process, explicit
bounded LRU caches (keyed on every determinant of the workload:
model, dataset, pair count, batch size, **seed**, and the derived
quick/full fidelity flag) replace the old ``functools.lru_cache``
decorators, so cache keys are auditable and eviction is bounded.
Across processes, profiled traces persist in the on-disk
:class:`~repro.perf.trace_cache.TraceCache` (``.trace_cache/`` by
default, ``REPRO_TRACE_CACHE`` to relocate or disable), so parallel
harness workers and repeated CLI invocations skip re-profiling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..analysis.metrics import ResultTable
from ..graphs.datasets import load_dataset
from ..models import build_model
from ..sim.engine import PlatformResult
from ..trace.profiler import BatchTrace, profile_batches
from ..core.api import simulate_traces
from ..perf.trace_cache import default_trace_cache

__all__ = [
    "ExperimentResult",
    "MODEL_ORDER",
    "DATASET_ORDER",
    "QUICK_PAIRS",
    "QUICK_BATCH",
    "workload_traces",
    "workload_results",
    "clear_workload_caches",
    "prewarm_workloads",
]

MODEL_ORDER = ("GMN-Li", "GraphSim", "SimGNN")
DATASET_ORDER = ("AIDS", "COLLAB", "GITHUB", "RD-B", "RD-5K", "RD-12K")

QUICK_PAIRS = 4
QUICK_BATCH = 4
FULL_BATCH = 32


class ExperimentResult:
    """Outcome of one experiment: a printable table plus raw data."""

    __slots__ = ("name", "description", "table", "data")

    def __init__(
        self,
        name: str,
        description: str,
        table: ResultTable,
        data: Dict,
    ) -> None:
        self.name = name
        self.description = description
        self.table = table
        self.data = data

    def render(self) -> str:
        return f"== {self.name}: {self.description} ==\n{self.table.render()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentResult({self.name!r})"


class _BoundedLRU:
    """Explicit least-recently-used cache with a hard size bound."""

    __slots__ = ("maxsize", "_entries")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_TRACE_MEMO = _BoundedLRU(maxsize=64)
_RESULT_MEMO = _BoundedLRU(maxsize=256)


def _fidelity(num_pairs: int, batch_size: int) -> str:
    """The quick/full flag a workload size implies — cached explicitly
    so quick and full runs of the same (model, dataset, seed) can never
    alias, even if a future size change made their pair counts collide."""
    if (num_pairs, batch_size) == (QUICK_PAIRS, QUICK_BATCH):
        return "quick"
    return "full"


def clear_workload_caches() -> None:
    """Drop both in-process memo caches (the disk cache is untouched)."""
    _TRACE_MEMO.clear()
    _RESULT_MEMO.clear()


def workload_traces(
    model_name: str,
    dataset_name: str,
    num_pairs: int,
    batch_size: int,
    seed: int,
) -> Tuple[BatchTrace, ...]:
    """Profile (and memoize) one model-dataset workload.

    Lookup order: in-process LRU, then the persistent disk cache, then a
    fresh profiling run (which populates both).
    """
    key = (
        model_name,
        dataset_name,
        int(num_pairs),
        int(batch_size),
        int(seed),
        _fidelity(num_pairs, batch_size),
    )
    memoized = _TRACE_MEMO.get(key)
    if memoized is not None:
        return memoized
    disk = default_trace_cache()
    if disk is not None:
        loaded = disk.load(
            model_name, dataset_name, num_pairs, batch_size, seed
        )
        if loaded is not None:
            traces = tuple(loaded)
            _TRACE_MEMO.put(key, traces)
            return traces
    pairs = load_dataset(dataset_name, seed=seed, num_pairs=num_pairs)
    model = build_model(
        model_name, input_dim=pairs[0].target.feature_dim, seed=seed
    )
    traces = tuple(profile_batches(model, pairs, batch_size=batch_size))
    if disk is not None:
        try:
            disk.store(
                model_name, dataset_name, num_pairs, batch_size, seed, traces
            )
        except OSError:  # read-only filesystem etc.: cache is best-effort
            pass
    _TRACE_MEMO.put(key, traces)
    return traces


def workload_results(
    model_name: str,
    dataset_name: str,
    platforms: Tuple[str, ...],
    num_pairs: int,
    batch_size: int,
    seed: int,
) -> Dict[str, PlatformResult]:
    """Simulate (and memoize) one workload on the given platforms."""
    key = (
        model_name,
        dataset_name,
        tuple(platforms),
        int(num_pairs),
        int(batch_size),
        int(seed),
        _fidelity(num_pairs, batch_size),
    )
    memoized = _RESULT_MEMO.get(key)
    if memoized is not None:
        return memoized
    traces = workload_traces(
        model_name, dataset_name, num_pairs, batch_size, seed
    )
    results = simulate_traces(traces, platforms)
    _RESULT_MEMO.put(key, results)
    return results


def prewarm_workloads(
    workloads,
    platforms: Tuple[str, ...],
    num_pairs: int,
    batch_size: int,
    seed: int = 0,
    workers: Optional[int] = None,
) -> None:
    """Simulate many (model, dataset) workloads up front — fanned across
    worker processes when ``workers`` > 1 — and prime the in-process
    memo, so subsequent :func:`workload_results` calls are cache hits.
    Worker processes also populate the shared disk trace cache."""
    from ..perf.parallel import parallel_workload_results

    computed = parallel_workload_results(
        list(workloads), platforms, num_pairs, batch_size, seed, workers
    )
    for (model_name, dataset_name), results in computed.items():
        key = (
            model_name,
            dataset_name,
            tuple(platforms),
            int(num_pairs),
            int(batch_size),
            int(seed),
            _fidelity(num_pairs, batch_size),
        )
        _RESULT_MEMO.put(key, results)


def workload_size(quick: bool) -> Tuple[int, int]:
    """(num_pairs, batch_size) for the requested fidelity."""
    if quick:
        return QUICK_PAIRS, QUICK_BATCH
    return 64, FULL_BATCH
