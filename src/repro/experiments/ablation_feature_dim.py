"""Ablation: node-feature width.

The paper fixes the hidden width at 64 everywhere. Width moves the
matching-to-embedding FLOP ratio (matching scales with f, the dense
embedding transform with f^2), so it shifts how much of the workload the
EMF can remove. This sweep uses :class:`CustomGMN` to quantify CEGMA's
speedup across widths — the redundancy itself (a topology property) is
width-invariant, which the experiment also verifies.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..analysis.redundancy import remaining_matching_fraction
from ..graphs.datasets import load_dataset
from ..models.custom import CustomGMN
from ..platforms import build_platform
from ..trace.profiler import profile_batches
from .common import ExperimentResult

__all__ = ["run", "FEATURE_DIMS"]

FEATURE_DIMS = (16, 32, 64, 128)
DATASET = "RD-B"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs = 4 if quick else 16
    pairs = load_dataset(DATASET, seed=seed, num_pairs=num_pairs)
    input_dim = pairs[0].target.feature_dim

    table = ResultTable(
        [
            "hidden dim",
            "CEGMA speedup vs AWB",
            "matching remaining %",
            "CEGMA us/pair",
        ],
        title=f"Feature-width sweep (CustomGMN, layer-wise dot, {DATASET})",
    )
    data: Dict[int, Dict[str, float]] = {}
    for dim in FEATURE_DIMS:
        model = CustomGMN(
            input_dim=input_dim, hidden_dim=dim, num_layers=3, seed=seed
        )
        traces = profile_batches(model, pairs, batch_size=num_pairs)
        cegma = build_platform("CEGMA").simulate_batches(traces)
        awb = build_platform("AWB-GCN").simulate_batches(traces)
        remaining = remaining_matching_fraction(
            [trace for batch in traces for trace in batch.pair_traces]
        )
        row = {
            "speedup": awb.latency_seconds / cegma.latency_seconds,
            "remaining": remaining,
            "cegma_latency": cegma.latency_per_pair,
        }
        table.add_row(
            dim, row["speedup"], 100 * row["remaining"], row["cegma_latency"] * 1e6
        )
        data[dim] = row

    return ExperimentResult(
        "ablation_feature_dim",
        "Redundancy is width-invariant; the speedup shifts with the "
        "matching/embedding balance",
        table,
        data,
    )
