"""Shared metric aggregation used by the summary experiment."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.redundancy import remaining_matching_fraction
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    workload_results,
    workload_size,
    workload_traces,
)

__all__ = ["headline_metrics"]

_PLATFORMS = ("PyG-CPU", "PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA")


def headline_metrics(quick: bool = True, seed: int = 0) -> Dict[str, float]:
    """The evaluation's headline averages over all models x datasets."""
    gains = {p: [] for p in _PLATFORMS}
    dram, energy, removed = [], [], []
    for model_name in MODEL_ORDER:
        for dataset in DATASET_ORDER:
            num_pairs, batch_size = workload_size(quick, dataset)
            results = workload_results(
                model_name, dataset, _PLATFORMS, num_pairs, batch_size, seed
            )
            cegma = results["CEGMA"]
            for platform in _PLATFORMS:
                gains[platform].append(
                    results[platform].latency_seconds / cegma.latency_seconds
                )
            dram.append(cegma.dram_bytes / results["HyGCN"].dram_bytes)
            energy.append(
                cegma.energy_joules / results["HyGCN"].energy_joules
            )
            traces = [
                trace
                for batch in workload_traces(
                    model_name, dataset, num_pairs, batch_size, seed
                )
                for trace in batch.pair_traces
            ]
            removed.append(1.0 - remaining_matching_fraction(traces))
    return {
        "speedup vs PyG-CPU": float(np.mean(gains["PyG-CPU"])),
        "speedup vs PyG-GPU": float(np.mean(gains["PyG-GPU"])),
        "speedup vs HyGCN": float(np.mean(gains["HyGCN"])),
        "speedup vs AWB-GCN": float(np.mean(gains["AWB-GCN"])),
        "DRAM vs HyGCN": float(np.mean(dram)),
        "energy vs HyGCN": float(np.mean(energy)),
        "matching removed (mean)": float(np.mean(removed)),
    }
