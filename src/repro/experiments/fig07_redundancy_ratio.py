"""Fig. 7: ratio between redundant and unique matchings.

Three models x six datasets; the paper reports >90% redundant matching
on average (ratio > 9:1 on large datasets, lower on small molecules).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..analysis.redundancy import redundant_to_unique_ratio
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_size,
    workload_traces,
)

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["dataset"] + [f"{m} (redundant:unique)" for m in MODEL_ORDER],
        title="Redundant vs unique matching ratio (Fig. 7)",
    )
    data: Dict[str, Dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        num_pairs, batch_size = workload_size(quick, dataset)
        row = [dataset]
        data[dataset] = {}
        for model_name in MODEL_ORDER:
            traces = [
                trace
                for batch in workload_traces(
                    model_name, dataset, num_pairs, batch_size, seed
                )
                for trace in batch.pair_traces
            ]
            ratio = redundant_to_unique_ratio(traces)
            row.append(ratio)
            data[dataset][model_name] = ratio
        table.add_row(*row)

    return ExperimentResult(
        "fig07",
        "Redundant-to-unique matching ratios per model and dataset",
        table,
        data,
    )
