"""Fig. 16: end-to-end speedup over the PyG-CPU baseline.

All platforms, three models, six datasets. The paper's averages: CEGMA
is 3139x over PyG-CPU, 353x over PyG-GPU, 8.4x over HyGCN and 6.5x over
AWB-GCN, with larger gains on layer-wise models and larger graphs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_results,
    workload_size,
)

__all__ = ["run", "PLATFORMS"]

PLATFORMS = ("PyG-CPU", "PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["model", "dataset"] + [f"{p} speedup" for p in PLATFORMS],
        title="End-to-end speedup over PyG-CPU (Fig. 16)",
    )
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    cegma_vs = {platform: [] for platform in PLATFORMS}
    for model_name in MODEL_ORDER:
        data[model_name] = {}
        for dataset in DATASET_ORDER:
            num_pairs, batch_size = workload_size(quick, dataset)
            results = workload_results(
                model_name, dataset, PLATFORMS, num_pairs, batch_size, seed
            )
            base = results["PyG-CPU"].latency_seconds
            speedups = {
                platform: base / results[platform].latency_seconds
                for platform in PLATFORMS
            }
            table.add_row(
                model_name, dataset, *[speedups[p] for p in PLATFORMS]
            )
            data[model_name][dataset] = speedups
            cegma_latency = results["CEGMA"].latency_seconds
            for platform in PLATFORMS:
                cegma_vs[platform].append(
                    results[platform].latency_seconds / cegma_latency
                )

    averages = {
        platform: float(np.mean(ratios))
        for platform, ratios in cegma_vs.items()
    }
    table.add_row(
        "MEAN",
        "CEGMA vs each",
        *[averages[p] for p in PLATFORMS],
    )
    return ExperimentResult(
        "fig16",
        "End-to-end speedups over PyG-CPU; last row = mean CEGMA gain "
        "over each platform (paper: 3139x / 353x / 8.4x / 6.5x / 1x)",
        table,
        {"speedups": data, "cegma_mean_gain": averages},
    )
