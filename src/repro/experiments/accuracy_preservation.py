"""Accuracy preservation under EMF filtering.

Section III-C: skipping redundant matchings and copying unique results
changes nothing "without jeopardizing accuracy". This experiment trains
a scoring head per model on the similar/dissimilar task (1 vs 4
substituted edges) and evaluates the SAME head with a dense backbone
and with an EMF-filtered backbone: predictions must coincide.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..graphs.datasets import load_dataset
from ..models import build_model, evaluate_scorer, train_scorer
from .common import MODEL_ORDER, ExperimentResult

__all__ = ["run"]

DATASET = "AIDS"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs = 32 if quick else 128
    pairs = load_dataset(DATASET, seed=seed, num_pairs=num_pairs)
    split = int(0.75 * len(pairs))
    train, test = pairs[:split], pairs[split:]
    input_dim = train[0].target.feature_dim

    table = ResultTable(
        ["model", "accuracy (dense)", "accuracy (EMF)", "identical"],
        title=f"Similarity-classification accuracy on {DATASET} "
        "(trained head, random backbone)",
    )
    data: Dict[str, Dict[str, float]] = {}
    for model_name in MODEL_ORDER:
        dense_model = build_model(model_name, input_dim=input_dim, seed=seed)
        emf_model = build_model(
            model_name, input_dim=input_dim, seed=seed, use_emf=True
        )
        head = train_scorer(dense_model, train)
        dense_accuracy = evaluate_scorer(dense_model, head, test)
        emf_accuracy = evaluate_scorer(emf_model, head, test)
        identical = dense_accuracy == emf_accuracy
        table.add_row(model_name, dense_accuracy, emf_accuracy, identical)
        data[model_name] = {
            "dense": dense_accuracy,
            "emf": emf_accuracy,
            "identical": identical,
        }

    return ExperimentResult(
        "accuracy",
        "EMF-filtered inference matches dense predictions",
        table,
        data,
    )
