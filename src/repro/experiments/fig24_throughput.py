"""Fig. 24: inference throughput (graph pairs per second).

The paper quotes, e.g., CEGMA sustaining ~5000 GMN-Li pairs/s on RD-5K
against 312 pairs/s on the V100 and 588 pairs/s on AWB-GCN.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_results,
    workload_size,
)

__all__ = ["run", "PLATFORMS"]

PLATFORMS = ("PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["model", "dataset"] + [f"{p} pairs/s" for p in PLATFORMS],
        title="Inference throughput (Fig. 24)",
    )
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    ratio_acc = {p: [] for p in PLATFORMS}
    for model_name in MODEL_ORDER:
        data[model_name] = {}
        for dataset in DATASET_ORDER:
            num_pairs, batch_size = workload_size(quick, dataset)
            results = workload_results(
                model_name, dataset, PLATFORMS, num_pairs, batch_size, seed
            )
            throughput = {
                p: results[p].throughput_pairs_per_second for p in PLATFORMS
            }
            table.add_row(
                model_name, dataset, *[throughput[p] for p in PLATFORMS]
            )
            data[model_name][dataset] = throughput
            for platform in PLATFORMS:
                ratio_acc[platform].append(
                    throughput["CEGMA"] / throughput[platform]
                )

    means = {p: float(np.mean(ratio_acc[p])) for p in PLATFORMS}
    table.add_row("MEAN", "CEGMA ratio", *[means[p] for p in PLATFORMS])
    return ExperimentResult(
        "fig24",
        "Throughput per platform (paper mean CEGMA ratio: 353x GPU, "
        "8.4x HyGCN, 6.5x AWB-GCN)",
        table,
        {"throughput": data, "cegma_ratio": means},
    )
