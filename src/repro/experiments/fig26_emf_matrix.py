"""Fig. 26: the global adjacency matrix before and after EMF.

For a batch of four AIDS pairs the paper renders the matching area of
the global adjacency matrix, showing most matching cells removed by the
EMF. We regenerate the counts and an ASCII density rendering of the
cross-graph block.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.metrics import ResultTable
from ..emf.filter import MatchingPlan
from ..graphs.batch import GraphPairBatch
from ..graphs.datasets import load_dataset
from ..models import build_model
from .common import ExperimentResult

__all__ = ["run", "render_density"]

BATCH_PAIRS = 4
RENDER_CELLS = 24


def render_density(mask: np.ndarray, cells: int = RENDER_CELLS) -> List[str]:
    """Coarse ASCII rendering of a boolean matrix (dark = dense)."""
    if mask.size == 0:
        return []
    shades = " .:*#"
    rows = np.array_split(np.arange(mask.shape[0]), min(cells, mask.shape[0]))
    cols = np.array_split(np.arange(mask.shape[1]), min(cells, mask.shape[1]))
    lines = []
    for row_block in rows:
        line = []
        for col_block in cols:
            density = mask[np.ix_(row_block, col_block)].mean()
            line.append(shades[min(len(shades) - 1, int(density * len(shades)))])
        lines.append("".join(line))
    return lines


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    pairs = load_dataset("AIDS", seed=seed, num_pairs=BATCH_PAIRS)
    batch = GraphPairBatch(pairs)
    model = build_model("GraphSim", input_dim=pairs[0].target.feature_dim)

    before = batch.global_matching_mask()
    after = np.zeros_like(before)
    for pair, t_off, q_off in batch.iter_with_offsets():
        trace = model.forward_pair(pair)
        last = trace.layers[-1]
        plan = MatchingPlan.from_features(
            last.target_features, last.query_features
        )
        q_local = q_off - batch.num_target_nodes
        rows = [t_off + i for i in plan.target_filter.unique_indices]
        cols = [q_local + j for j in plan.query_filter.unique_indices]
        after[np.ix_(rows, cols)] = True

    total = int(before.sum())
    remaining = int(after.sum())
    table = ResultTable(
        ["quantity", "value"],
        title="Global matching area before/after EMF, AIDS batch of 4 (Fig. 26)",
    )
    table.add_row("matching cells before EMF", total)
    table.add_row("matching cells after EMF", remaining)
    table.add_row("removed %", 100.0 * (1 - remaining / total))

    return ExperimentResult(
        "fig26",
        "EMF visibly sparsifies the batched matching area",
        table,
        {
            "before_cells": total,
            "after_cells": remaining,
            "render_before": render_density(before),
            "render_after": render_density(after),
        },
    )
