"""Figs. 8 and 12: input-buffer misses of the four window schemes.

Regenerates the worked example (4-node target, 6-node query, 4-node
buffer) where the paper counts 26 misses for the single intra-graph
window and 25 for double independent windows, and shows the joint /
coordinated windows doing substantially better — then repeats the
comparison on sampled dataset pairs.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..cgc.window import SCHEDULERS
from ..graphs.datasets import load_dataset
from ..graphs.graph import Graph
from ..graphs.pairs import GraphPair
from .common import ExperimentResult

__all__ = ["run", "paper_example_pair"]

SCHEME_ORDER = ("single", "double", "joint", "coordinated", "oracle")

# The oracle's rollouts are quadratic in block count; it is evaluated as
# a reference on workloads below this size and skipped above.
ORACLE_NODE_LIMIT = 300


def paper_example_pair() -> GraphPair:
    """The running example of Figs. 5/8/12."""
    target = Graph.from_undirected_edges(4, [(0, 2), (1, 2), (2, 3)])
    query = Graph.from_undirected_edges(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)]
    )
    return GraphPair(target, query)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["workload", "capacity"] + list(SCHEME_ORDER),
        title="Window-scheme input-buffer misses (Figs. 8 and 12)",
    )
    data: Dict[str, Dict[str, int]] = {}

    example = paper_example_pair()
    misses = {
        scheme: SCHEDULERS[scheme](example, capacity=4).total_misses
        for scheme in SCHEME_ORDER
    }
    table.add_row("paper example", 4, *[misses[s] for s in SCHEME_ORDER])
    data["paper example"] = misses

    num_pairs = 2 if quick else 8
    for dataset, capacity in (("AIDS", 8), ("GITHUB", 32), ("RD-B", 64)):
        pairs = load_dataset(dataset, seed=seed, num_pairs=num_pairs)
        totals = {scheme: 0 for scheme in SCHEME_ORDER}
        oracle_skipped = False
        for pair in pairs:
            for scheme in SCHEME_ORDER:
                if (
                    scheme == "oracle"
                    and pair.total_nodes > ORACLE_NODE_LIMIT
                ):
                    oracle_skipped = True
                    continue
                totals[scheme] += SCHEDULERS[scheme](pair, capacity).total_misses
        if oracle_skipped:
            totals["oracle"] = "-"
        table.add_row(dataset, capacity, *[totals[s] for s in SCHEME_ORDER])
        data[dataset] = totals

    return ExperimentResult(
        "fig08",
        "Miss counts of single/double/joint/coordinated windows",
        table,
        data,
    )
