"""Ablation: batch-size sensitivity of the baseline dataflow.

The paper runs batch 32 everywhere. Stage-wise baselines thrash the
input buffer only when the batch working set exceeds it (Fig. 4's
regime), so their per-pair cost grows with batch size on small graphs;
CEGMA's pair-coherent schedule is batch-size-insensitive. This sweep
quantifies that — a design argument the paper implies but never plots.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..graphs.datasets import load_dataset
from ..models import build_model
from ..platforms import build_platform
from ..trace.profiler import profile_batches
from .common import ExperimentResult

__all__ = ["run", "BATCH_SIZES"]

BATCH_SIZES = (1, 4, 16, 32)
DATASET = "AIDS"
MODEL = "GraphSim"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    total_pairs = 32 if quick else 128
    pairs = load_dataset(DATASET, seed=seed, num_pairs=total_pairs)
    model = build_model(MODEL, input_dim=pairs[0].target.feature_dim, seed=seed)

    table = ResultTable(
        ["batch size", "CEGMA us/pair", "AWB-GCN us/pair", "AWB-GCN DRAM KB/pair"],
        title=f"Batch-size sweep ({MODEL} on {DATASET})",
    )
    data: Dict[int, Dict[str, float]] = {}
    for batch_size in BATCH_SIZES:
        traces = profile_batches(model, pairs, batch_size=batch_size)
        cegma = build_platform("CEGMA").simulate_batches(traces)
        awb = build_platform("AWB-GCN").simulate_batches(traces)
        row = {
            "cegma_latency": cegma.latency_per_pair,
            "awb_latency": awb.latency_per_pair,
            "awb_dram": awb.dram_bytes / awb.num_pairs,
        }
        table.add_row(
            batch_size,
            row["cegma_latency"] * 1e6,
            row["awb_latency"] * 1e6,
            row["awb_dram"] / 1024,
        )
        data[batch_size] = row

    return ExperimentResult(
        "ablation_batch",
        "Baselines degrade once the batch working set exceeds the buffer; "
        "CEGMA does not",
        table,
        data,
    )
