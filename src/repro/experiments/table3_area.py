"""Table III: CEGMA area and floorplan breakdown.

The paper synthesizes CEGMA at 6.3 mm^2 on TSMC 14 nm with the split
EMF 0.18%/6.66%, CGC 0.01%/11.79%, PE 53.58%/27.78% (logic/buffer).
"""

from __future__ import annotations

from ..analysis.metrics import ResultTable
from ..sim.area import PAPER_TOTAL_MM2, cegma_area_report
from .common import ExperimentResult

__all__ = ["run"]

PAPER_SHARES = {
    "EMF": {"logic_pct": 0.18, "buffer_pct": 6.66},
    "CGC": {"logic_pct": 0.01, "buffer_pct": 11.79},
    "PE": {"logic_pct": 53.58, "buffer_pct": 27.78},
}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    report = cegma_area_report()
    shares = report.table()
    table = ResultTable(
        ["component", "logic % (ours)", "logic % (paper)",
         "buffer % (ours)", "buffer % (paper)"],
        title=f"CEGMA area {report.total_mm2:.2f} mm^2 "
        f"(paper {PAPER_TOTAL_MM2} mm^2, 14 nm)",
    )
    for name in ("EMF", "CGC", "PE"):
        table.add_row(
            name,
            shares[name]["logic_pct"],
            PAPER_SHARES[name]["logic_pct"],
            shares[name]["buffer_pct"],
            PAPER_SHARES[name]["buffer_pct"],
        )
    return ExperimentResult(
        "table3",
        "Area/floorplan breakdown vs Table III",
        table,
        {"total_mm2": report.total_mm2, "shares": shares, "paper": PAPER_SHARES},
    )
