"""Fig. 3: percentage of FLOPs within one GMN layer, per dataset.

The paper uses a GraphSim-style layer (standard GCN embedding +
dot-product matching, feature size 64) and finds cross-graph matching
accounts for 58%-99% of the layer's FLOPs. Two accounting modes are
reported (see :mod:`repro.trace.flops`): the paper's per-node combination
accounting, and the literal accounting that includes the dense weight
transform — under which matching still dominates all but the smallest
datasets and grows quadratically.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..graphs.datasets import load_dataset
from ..trace.flops import pair_flop_breakdown
from .common import DATASET_ORDER, ExperimentResult, workload_size

__all__ = ["run"]

FEATURE_DIM = 64


def _dataset_breakdown(dataset: str, num_pairs: int, seed: int, with_weights: bool):
    pairs = load_dataset(dataset, seed=seed, num_pairs=num_pairs)
    totals = {"aggregate": 0, "combine": 0, "match": 0}
    for pair in pairs:
        breakdown = pair_flop_breakdown(
            pair, FEATURE_DIM, combine_includes_weights=with_weights
        )
        for phase, value in breakdown.items():
            totals[phase] += value
    grand = sum(totals.values())
    return {phase: value / grand for phase, value in totals.items()}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        [
            "dataset",
            "agg %",
            "combine %",
            "match %",
            "match % (incl. weight xform)",
        ],
        title="FLOP share within one GMN layer (Fig. 3)",
    )
    data: Dict[str, Dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        num_pairs, _ = workload_size(quick, dataset)
        paper_mode = _dataset_breakdown(dataset, num_pairs, seed, with_weights=False)
        literal_mode = _dataset_breakdown(dataset, num_pairs, seed, with_weights=True)
        table.add_row(
            dataset,
            100 * paper_mode["aggregate"],
            100 * paper_mode["combine"],
            100 * paper_mode["match"],
            100 * literal_mode["match"],
        )
        data[dataset] = {"paper_mode": paper_mode, "literal_mode": literal_mode}

    return ExperimentResult(
        "fig03",
        "FLOP breakdown of one GMN layer per dataset",
        table,
        data,
    )
