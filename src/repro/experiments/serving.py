"""Serving-pipeline study: scheduling policies on a clone-search stream.

The workload of §III-A made measurable: a clone database (few distinct
graphs cycled into many entries) under a hot-query stream, served
through the staged pipeline once per scheduling policy. Reported per
policy: throughput, how many requests the scheduler deduplicated, how
many candidate scorings the executor broadcast, and the p50/p99
end-to-end latency from the ``search.serve.latency_seconds`` histogram.

Rankings are policy-invariant (the ``search.serve_vs_direct`` check
gates bit-identity against the flat path), so the interesting output is
purely the serving-side economics.
"""

from __future__ import annotations

import time
from typing import Dict

from ..analysis.metrics import ResultTable
from ..core.api import serve_query_stream
from ..obs.metrics import metrics_enabled
from .common import ExperimentResult

__all__ = ["run", "POLICIES"]

POLICIES = ("fifo", "deadline", "size_bucketed")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        num_queries, database_size = 8, 16
        database_unique, distinct_queries = 4, 3
    else:
        num_queries, database_size = 32, 64
        database_unique, distinct_queries = 16, 8

    table = ResultTable(
        [
            "policy",
            "served",
            "deduped requests",
            "dedup'd candidates",
            "queries/s",
            "p50 ms",
            "p99 ms",
        ],
        title="Serving pipeline by scheduling policy",
    )
    data: Dict[str, Dict[str, float]] = {}
    for policy in POLICIES:
        with metrics_enabled() as registry:
            start = time.perf_counter()
            outcome = serve_query_stream(
                "GMN-Li",
                "AIDS",
                num_queries=num_queries,
                database_size=database_size,
                database_unique=database_unique,
                distinct_queries=distinct_queries,
                policy=policy,
                max_batch_queries=4,
                seed=seed,
            )
            elapsed = time.perf_counter() - start
        stats = outcome["stats"]
        row = {
            "served": stats["served"],
            "deduped_requests": float(
                registry.counter("search.serve.deduped_requests")
            ),
            "candidate_dedup_hits": float(
                registry.counter("search.serve.candidate_dedup_hits")
            ),
            "queries_per_second": num_queries / elapsed,
            "latency_p50_seconds": stats.get("latency_p50_seconds", 0.0),
            "latency_p99_seconds": stats.get("latency_p99_seconds", 0.0),
        }
        data[policy] = row
        table.add_row(
            policy,
            row["served"],
            row["deduped_requests"],
            row["candidate_dedup_hits"],
            row["queries_per_second"],
            1e3 * row["latency_p50_seconds"],
            1e3 * row["latency_p99_seconds"],
        )

    return ExperimentResult(
        "serving",
        "Staged serving pipeline on a clone-search stream: request and "
        "candidate dedup do the heavy lifting; policies reorder, never "
        "rerank",
        table,
        {
            "config": {
                "num_queries": num_queries,
                "database_size": database_size,
                "database_unique": database_unique,
                "distinct_queries": distinct_queries,
            },
            "policies": data,
        },
    )
