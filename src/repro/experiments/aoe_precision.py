"""AOE decision precision vs. a lookahead oracle.

Section V-C states "The Algorithm 2 can achieve 90% precision compared
to the optimal decisions". This experiment replays the coordinated
window with a rollout-based oracle at every two-way decision point and
reports how often AOE's constant-time estimate agrees.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..cgc.oracle import aoe_precision
from ..graphs.datasets import load_dataset
from .common import ExperimentResult

__all__ = ["run"]

WORKLOADS = (("AIDS", 8), ("COLLAB", 32), ("GITHUB", 32), ("RD-B", 64))


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs = 4 if quick else 16
    table = ResultTable(
        ["dataset", "capacity", "AOE precision", "decision points"],
        title="AOE precision vs lookahead oracle (Section V-C: ~90%)",
    )
    data: Dict[str, Dict[str, float]] = {}
    all_precisions = []
    for dataset, capacity in WORKLOADS:
        pairs = load_dataset(dataset, seed=seed, num_pairs=num_pairs)
        precisions = []
        points = 0
        for pair in pairs:
            from ..cgc.oracle import oracle_decisions

            decisions = oracle_decisions(pair, capacity)
            if not decisions:
                continue
            points += len(decisions)
            precisions.append(
                sum(1 for aoe, oracle in decisions if aoe == oracle)
                / len(decisions)
            )
        precision = float(np.mean(precisions)) if precisions else 1.0
        table.add_row(dataset, capacity, precision, points)
        data[dataset] = {"precision": precision, "decision_points": points}
        all_precisions.extend(precisions)

    mean = float(np.mean(all_precisions)) if all_precisions else 1.0
    table.add_row("MEAN", "", mean, sum(d["decision_points"] for d in data.values()))
    return ExperimentResult(
        "aoe_precision",
        "AOE vs oracle decision agreement (paper: ~90%)",
        table,
        {"per_dataset": data, "mean_precision": mean},
    )
