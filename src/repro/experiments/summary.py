"""Headline summary: every reproduced average against the paper's.

One table aggregating the evaluation's key numbers — the same rows as
the README's reproduction table, regenerated from the current code.
"""

from __future__ import annotations

from ..analysis.metrics import ResultTable
from .common import ExperimentResult
from .registry_helpers import headline_metrics

__all__ = ["run"]

PAPER = {
    "speedup vs PyG-CPU": 3139.0,
    "speedup vs PyG-GPU": 353.0,
    "speedup vs HyGCN": 8.4,
    "speedup vs AWB-GCN": 6.5,
    "DRAM vs HyGCN": 0.41,
    "energy vs HyGCN": 0.37,
    "matching removed (mean)": 0.90,
}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    measured = headline_metrics(quick=quick, seed=seed)
    table = ResultTable(
        ["metric", "paper", "measured"],
        title="Headline reproduction summary",
    )
    data = {}
    for metric, paper_value in PAPER.items():
        value = measured[metric]
        table.add_row(metric, paper_value, value)
        data[metric] = {"paper": paper_value, "measured": value}
    return ExperimentResult(
        "summary",
        "Paper-vs-measured headline averages",
        table,
        data,
    )
