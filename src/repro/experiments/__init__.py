"""Experiment runners: one module per evaluation figure/table."""

from .common import ExperimentResult

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


def __getattr__(name):
    # Lazy access so importing repro.experiments stays cheap; the
    # registry imports every figure module.
    if name in ("EXPERIMENTS", "run_experiment"):
        from . import registry

        return getattr(registry, name)
    raise AttributeError(name)
