"""Figs. 21 and 22: component breakdown — CEGMA-EMF, CEGMA-CGC, CEGMA.

Speedup and DRAM accesses relative to AWB-GCN (the strongest baseline).
Paper averages: EMF alone 3.6x, CGC alone 2.9x, with EMF's advantage
growing on large graphs (7.1x on RD-5K) while CGC's saturates (4.3x);
EMF cuts DRAM 49% and CGC 34% on average.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_results,
    workload_size,
)

__all__ = ["run", "PLATFORMS"]

PLATFORMS = ("AWB-GCN", "CEGMA-EMF", "CEGMA-CGC", "CEGMA")
VARIANTS = ("CEGMA-EMF", "CEGMA-CGC", "CEGMA")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["dataset"]
        + [f"{v} speedup" for v in VARIANTS]
        + [f"{v} DRAM (norm.)" for v in VARIANTS],
        title="Ablation vs AWB-GCN: speedup (Fig. 21) and DRAM (Fig. 22)",
    )
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    speedup_acc = {v: [] for v in VARIANTS}
    dram_acc = {v: [] for v in VARIANTS}
    for dataset in DATASET_ORDER:
        num_pairs, batch_size = workload_size(quick, dataset)
        speedups = {v: [] for v in VARIANTS}
        drams = {v: [] for v in VARIANTS}
        for model_name in MODEL_ORDER:
            results = workload_results(
                model_name, dataset, PLATFORMS, num_pairs, batch_size, seed
            )
            awb = results["AWB-GCN"]
            for variant in VARIANTS:
                speedups[variant].append(
                    awb.latency_seconds / results[variant].latency_seconds
                )
                drams[variant].append(
                    results[variant].dram_bytes / awb.dram_bytes
                )
        row_speed = {v: float(np.mean(speedups[v])) for v in VARIANTS}
        row_dram = {v: float(np.mean(drams[v])) for v in VARIANTS}
        table.add_row(
            dataset,
            *[row_speed[v] for v in VARIANTS],
            *[row_dram[v] for v in VARIANTS],
        )
        data[dataset] = {"speedup": row_speed, "dram": row_dram}
        for variant in VARIANTS:
            speedup_acc[variant].extend(speedups[variant])
            dram_acc[variant].extend(drams[variant])

    means_speed = {v: float(np.mean(speedup_acc[v])) for v in VARIANTS}
    means_dram = {v: float(np.mean(dram_acc[v])) for v in VARIANTS}
    table.add_row(
        "MEAN",
        *[means_speed[v] for v in VARIANTS],
        *[means_dram[v] for v in VARIANTS],
    )
    return ExperimentResult(
        "fig21",
        "Ablation breakdown (paper: EMF 3.6x / CGC 2.9x speedup; "
        "EMF -49% / CGC -34% DRAM)",
        table,
        {"per_dataset": data, "mean_speedup": means_speed, "mean_dram": means_dram},
    )
