"""Fig. 18: percentage of matchings remaining after EMF filtering.

The paper's anchors: CEGMA eliminates >90% of matching computation on
average — 67% on small AIDS graphs up to 97% on RD-5K.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..analysis.redundancy import remaining_matching_fraction
from .common import (
    DATASET_ORDER,
    MODEL_ORDER,
    ExperimentResult,
    workload_size,
    workload_traces,
)

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["dataset"] + [f"{m} remaining %" for m in MODEL_ORDER] + ["mean removed %"],
        title="Remaining unique matching after EMF (Fig. 18)",
    )
    data: Dict[str, Dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        num_pairs, batch_size = workload_size(quick, dataset)
        remaining = {}
        for model_name in MODEL_ORDER:
            traces = [
                trace
                for batch in workload_traces(
                    model_name, dataset, num_pairs, batch_size, seed
                )
                for trace in batch.pair_traces
            ]
            remaining[model_name] = remaining_matching_fraction(traces)
        mean_removed = 100 * (1 - np.mean(list(remaining.values())))
        table.add_row(
            dataset,
            *[100 * remaining[m] for m in MODEL_ORDER],
            mean_removed,
        )
        data[dataset] = remaining

    return ExperimentResult(
        "fig18",
        "Percentage of unique matching remaining (paper: ~33% AIDS, ~3% RD-5K)",
        table,
        data,
    )
