"""Seed robustness: do the reproduced shapes depend on the random seed?

Dataset generation, pair perturbation, and weight initialization are
all seeded. This experiment regenerates the Fig. 18 anchors and the
CEGMA-vs-AWB-GCN speedup across several seeds and reports the spread —
the reproduction's conclusions should not be a property of seed 0.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis.metrics import ResultTable
from ..analysis.redundancy import remaining_matching_fraction
from ..platforms import build_platform
from .common import ExperimentResult, workload_size, workload_traces

__all__ = ["run", "SEEDS"]

SEEDS = (0, 1, 2)
MODEL = "GraphSim"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    table = ResultTable(
        ["seed", "AIDS removed %", "RD-5K removed %", "RD-B speedup vs AWB"],
        title=f"Seed robustness ({MODEL})",
    )
    data: Dict[int, Dict[str, float]] = {}
    for run_seed in SEEDS:
        row: Dict[str, float] = {}
        for dataset in ("AIDS", "RD-5K"):
            num_pairs, batch_size = workload_size(quick, dataset)
            traces = [
                trace
                for batch in workload_traces(
                    MODEL, dataset, num_pairs, batch_size, run_seed
                )
                for trace in batch.pair_traces
            ]
            row[dataset] = 1.0 - remaining_matching_fraction(traces)
        num_pairs, batch_size = workload_size(quick, "RD-B")
        batches = list(
            workload_traces(MODEL, "RD-B", num_pairs, batch_size, run_seed)
        )
        awb = build_platform("AWB-GCN").simulate_batches(batches)
        cegma = build_platform("CEGMA").simulate_batches(batches)
        row["speedup"] = awb.latency_seconds / cegma.latency_seconds
        table.add_row(
            run_seed, 100 * row["AIDS"], 100 * row["RD-5K"], row["speedup"]
        )
        data[run_seed] = row

    spreads = {
        metric: float(
            np.std([row[metric] for row in data.values()])
            / np.mean([row[metric] for row in data.values()])
        )
        for metric in ("AIDS", "RD-5K", "speedup")
    }
    return ExperimentResult(
        "seed_robustness",
        "Anchors and speedups are stable across seeds "
        f"(rel. std: {', '.join(f'{k}={v:.1%}' for k, v in spreads.items())})",
        table,
        {"per_seed": data, "relative_std": spreads},
    )
