"""Ablation: input-buffer capacity sweep.

Section III-B argues that enlarging the input buffer is "not feasible
and not scalable" (AIDS would need 4x, REDDIT-BINARY 128x). This sweep
quantifies the alternative: with CGC's coordinated window, CEGMA's
performance saturates at the paper's 128 KB, while the baseline
dataflow keeps paying for misses far beyond that.

Each sweep point is a platform spec string (``CEGMA@buffer_kb=256``)
resolved by the platform registry.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..core.api import simulate_traces
from .common import ExperimentResult, workload_traces

__all__ = ["run", "BUFFER_SIZES_KB", "sweep_specs"]

BUFFER_SIZES_KB = (16, 32, 64, 128, 256, 512)


def sweep_specs(size_kb: int) -> Dict[str, str]:
    """The two platform specs simulated at one buffer size."""
    return {
        "CEGMA": f"CEGMA@buffer_kb={size_kb}",
        "AWB-GCN": f"AWB-GCN@buffer_kb={size_kb}",
    }


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs = 4 if quick else 16
    traces = list(workload_traces("GraphSim", "RD-B", num_pairs, num_pairs, seed))

    table = ResultTable(
        [
            "buffer KB",
            "CEGMA us/pair",
            "CEGMA DRAM KB/pair",
            "AWB-GCN us/pair",
            "AWB-GCN DRAM KB/pair",
        ],
        title="Input-buffer sweep (GraphSim on RD-B)",
    )
    data: Dict[int, Dict[str, float]] = {}
    for size_kb in BUFFER_SIZES_KB:
        specs = sweep_specs(size_kb)
        results = simulate_traces(traces, tuple(specs.values()))
        cegma_result = results[specs["CEGMA"]]
        awb_result = results[specs["AWB-GCN"]]
        row = {
            "cegma_latency": cegma_result.latency_per_pair,
            "cegma_dram": cegma_result.dram_bytes / cegma_result.num_pairs,
            "awb_latency": awb_result.latency_per_pair,
            "awb_dram": awb_result.dram_bytes / awb_result.num_pairs,
        }
        table.add_row(
            size_kb,
            row["cegma_latency"] * 1e6,
            row["cegma_dram"] / 1024,
            row["awb_latency"] * 1e6,
            row["awb_dram"] / 1024,
        )
        data[size_kb] = row

    return ExperimentResult(
        "ablation_buffer",
        "CEGMA saturates at the paper's 128 KB; baselines keep paying",
        table,
        data,
    )
