"""Ablation: input-buffer capacity sweep.

Section III-B argues that enlarging the input buffer is "not feasible
and not scalable" (AIDS would need 4x, REDDIT-BINARY 128x). This sweep
quantifies the alternative: with CGC's coordinated window, CEGMA's
performance saturates at the paper's 128 KB, while the baseline
dataflow keeps paying for misses far beyond that.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.metrics import ResultTable
from ..sim import AcceleratorSimulator, awbgcn_config, cegma_config
from .common import ExperimentResult, workload_traces

__all__ = ["run", "BUFFER_SIZES_KB"]

BUFFER_SIZES_KB = (16, 32, 64, 128, 256, 512)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs = 4 if quick else 16
    traces = list(workload_traces("GraphSim", "RD-B", num_pairs, num_pairs, seed))

    table = ResultTable(
        [
            "buffer KB",
            "CEGMA us/pair",
            "CEGMA DRAM KB/pair",
            "AWB-GCN us/pair",
            "AWB-GCN DRAM KB/pair",
        ],
        title="Input-buffer sweep (GraphSim on RD-B)",
    )
    data: Dict[int, Dict[str, float]] = {}
    for size_kb in BUFFER_SIZES_KB:
        cegma = cegma_config()
        cegma.input_buffer_bytes = size_kb * 1024
        awb = awbgcn_config()
        awb.input_buffer_bytes = size_kb * 1024
        cegma_result = AcceleratorSimulator(cegma).simulate_batches(traces)
        awb_result = AcceleratorSimulator(awb).simulate_batches(traces)
        row = {
            "cegma_latency": cegma_result.latency_per_pair,
            "cegma_dram": cegma_result.dram_bytes / cegma_result.num_pairs,
            "awb_latency": awb_result.latency_per_pair,
            "awb_dram": awb_result.dram_bytes / awb_result.num_pairs,
        }
        table.add_row(
            size_kb,
            row["cegma_latency"] * 1e6,
            row["cegma_dram"] / 1024,
            row["awb_latency"] * 1e6,
            row["awb_dram"] / 1024,
        )
        data[size_kb] = row

    return ExperimentResult(
        "ablation_buffer",
        "CEGMA saturates at the paper's 128 KB; baselines keep paying",
        table,
        data,
    )
