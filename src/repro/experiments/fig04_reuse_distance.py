"""Fig. 4: node reuse-distance CDFs under the baseline regime.

GraphSim, feature dim 64, batch 32, 128 KB input buffer (512 nodes).
The paper finds most revisits exceed the buffer: AIDS would need ~4x
the capacity and REDDIT-BINARY ~128x.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..analysis.reuse import fraction_within, profile_reuse, reuse_distance_cdf
from ..graphs.datasets import load_dataset
from .common import ExperimentResult

__all__ = ["run", "FIG4_DATASETS", "BUFFER_NODES"]

FIG4_DATASETS = ("AIDS", "COLLAB", "RD-B")
BUFFER_NODES = 512  # 128 KB / (64 features x 4 B)
NUM_LAYERS = 3  # GraphSim


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    batch = 32  # the batch size is load-bearing for the reuse regime
    table = ResultTable(
        ["dataset", "reuses<=2^6", "reuses<=2^9", "reuses<=2^12", "buffer hit rate"],
        title="Baseline node reuse-distance CDF (Fig. 4)",
    )
    data: Dict[str, Dict] = {}
    for dataset in FIG4_DATASETS:
        pairs = load_dataset(dataset, seed=seed, num_pairs=batch)
        distances = profile_reuse(
            pairs, capacity=BUFFER_NODES, num_layers=NUM_LAYERS, cegma=False
        )
        thresholds, cdf = reuse_distance_cdf(distances)
        hit_rate = fraction_within(distances, BUFFER_NODES)
        table.add_row(
            dataset,
            float(cdf[6]),
            float(cdf[9]),
            float(cdf[12]),
            hit_rate,
        )
        data[dataset] = {
            "thresholds": thresholds.tolist(),
            "cdf": cdf.tolist(),
            "hit_rate": hit_rate,
        }

    return ExperimentResult(
        "fig04",
        "Baseline reuse distances (GraphSim, batch processing)",
        table,
        data,
    )
