"""Ablation: EMF feature-quantization granularity.

A design choice DESIGN.md calls out: our float reproduction quantizes
features before hashing (the hardware's fixed-point arithmetic makes
duplicates bit-identical). Coarser quantization merges *near*-duplicate
nodes — more matching removed, but the broadcast results now deviate
from the dense computation. This sweep measures both sides of the
trade, validating the default (6 decimals: conservative dedup, zero
observable deviation).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..emf.filter import elastic_matching_filter
from ..graphs.datasets import load_dataset
from ..models import build_model, similarity_matrix
from .common import ExperimentResult

__all__ = ["run", "DECIMALS_SWEEP"]

DECIMALS_SWEEP = (1, 2, 4, 6, 8)


def _broadcast_deviation(x, y, kind, decimals) -> float:
    """Max |dense - broadcast| when filtering at the given quantization."""
    from ..emf.filter import MatchingPlan

    plan = MatchingPlan(
        elastic_matching_filter(x, decimals=decimals),
        elastic_matching_filter(y, decimals=decimals),
    )
    dense = similarity_matrix(x, y, kind)
    unique = dense[
        np.ix_(plan.target_filter.unique_indices, plan.query_filter.unique_indices)
    ]
    rebuilt = plan.broadcast(unique)
    return float(np.abs(dense - rebuilt).max()) if dense.size else 0.0


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    num_pairs = 4 if quick else 16
    pairs = load_dataset("GITHUB", seed=seed, num_pairs=num_pairs)
    model = build_model("GraphSim", input_dim=pairs[0].target.feature_dim)
    layers = [
        layer
        for pair in pairs
        for layer in model.forward_pair(pair).layers
    ]

    table = ResultTable(
        ["decimals", "remaining matching %", "max similarity deviation"],
        title="EMF quantization sweep (GraphSim on GITHUB)",
    )
    data: Dict[int, Dict[str, float]] = {}
    for decimals in DECIMALS_SWEEP:
        total = 0
        unique = 0
        deviation = 0.0
        for layer in layers:
            t = elastic_matching_filter(layer.target_features, decimals=decimals)
            q = elastic_matching_filter(layer.query_features, decimals=decimals)
            total += t.num_nodes * q.num_nodes
            unique += t.num_unique * q.num_unique
            deviation = max(
                deviation,
                _broadcast_deviation(
                    layer.target_features, layer.query_features, "cosine", decimals
                ),
            )
        remaining = unique / total if total else 1.0
        table.add_row(decimals, 100 * remaining, deviation)
        data[decimals] = {"remaining": remaining, "deviation": deviation}

    return ExperimentResult(
        "ablation_quantization",
        "Quantization trades extra dedup against similarity deviation",
        table,
        data,
    )
