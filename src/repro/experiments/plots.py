"""Terminal charts for experiment results (the CLI's ``--plot`` flag).

Each supported experiment id maps to a renderer turning its raw data
into ASCII charts; unsupported experiments simply render no chart.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..analysis.ascii_plot import bar_chart, line_plot, log_bar_chart
from .common import ExperimentResult

__all__ = ["render_plots"]


def _plot_fig02(result: ExperimentResult) -> str:
    series = {
        platform: [
            (float(size), row[platform] * 1e3)
            for size, row in sorted(result.data["series"].items())
        ]
        for platform in ("PyG-GPU", "AWB-GCN")
    }
    return line_plot(series, title="latency per pair (ms) vs graph size")


def _plot_fig04(result: ExperimentResult) -> str:
    series = {
        dataset: list(
            zip(
                [float(i) for i in range(len(row["cdf"]))],
                [float(v) for v in row["cdf"]],
            )
        )
        for dataset, row in result.data.items()
    }
    return line_plot(series, title="reuse-distance CDF (x = log2 distance)")


def _plot_fig16(result: ExperimentResult) -> str:
    gains = {
        platform: value
        for platform, value in result.data["cegma_mean_gain"].items()
        if platform != "CEGMA"
    }
    return log_bar_chart(gains, title="mean CEGMA speedup over each platform")


def _plot_fig18(result: ExperimentResult) -> str:
    removed = {
        dataset: 100.0
        * (1 - sum(row.values()) / len(row))
        for dataset, row in result.data.items()
    }
    return bar_chart(removed, title="matching removed by EMF (%)")


def _plot_fig25(result: ExperimentResult) -> str:
    series = {
        platform: [
            (float(size), row[platform])
            for size, row in sorted(result.data.items())
        ]
        for platform in ("HyGCN", "AWB-GCN")
    }
    return line_plot(series, title="CEGMA speedup vs graph size")


def _plot_fig21(result: ExperimentResult) -> str:
    return bar_chart(
        result.data["mean_speedup"],
        title="mean ablation speedup over AWB-GCN",
    )


_RENDERERS: Dict[str, Callable[[ExperimentResult], str]] = {
    "fig02": _plot_fig02,
    "fig04": _plot_fig04,
    "fig20": _plot_fig04,  # same CDF structure per dataset
    "fig16": _plot_fig16,
    "fig18": _plot_fig18,
    "fig21": _plot_fig21,
    "fig25": _plot_fig25,
}


def render_plots(result: ExperimentResult) -> str:
    """Charts for a result, or an empty string when none are defined."""
    renderer = _RENDERERS.get(result.name)
    if renderer is None:
        return ""
    return renderer(result)
