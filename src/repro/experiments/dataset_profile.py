"""Structural profiles of the synthetic datasets.

Beyond Table II's size averages: degree statistics, clustering,
connectivity, and the WL duplicate structure — the properties that make
each dataset behave like its real counterpart for CEGMA's purposes
(hub-and-spoke REDDIT graphs, clustered COLLAB communities, small
labeled AIDS molecules).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.metrics import ResultTable
from ..graphs.datasets import generate_graph
from ..graphs.stats import dataset_profile
from .common import DATASET_ORDER, ExperimentResult

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    samples = 8 if quick else 40
    rng = np.random.default_rng(seed)
    table = ResultTable(
        [
            "dataset",
            "mean degree",
            "max degree",
            "clustering",
            "components",
            "WL unique frac",
        ],
        title="Structural profiles of the synthetic datasets",
    )
    data: Dict[str, Dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        graphs = [generate_graph(dataset, rng) for _ in range(samples)]
        profile = dataset_profile(graphs)
        table.add_row(
            dataset,
            profile["mean_degree"],
            profile["max_degree"],
            profile["clustering"],
            profile["num_components"],
            profile["wl_unique_fraction"],
        )
        data[dataset] = profile

    return ExperimentResult(
        "dataset_profile",
        "Degree/clustering/duplication structure per dataset",
        table,
        data,
    )
