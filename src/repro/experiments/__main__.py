"""CLI: run experiments from the command line.

Usage::

    python -m repro.experiments fig16            # quick mode
    python -m repro.experiments fig16 --full     # Table II test-set sizes
    python -m repro.experiments all              # every experiment, quick

Output goes through the ``repro.*`` logger hierarchy (results at INFO,
which this entry point enables) rather than ``print``, matching the
rest of the library; ``--output`` writes the raw data as a
provenance-stamped JSON artifact.
"""

from __future__ import annotations

import argparse
import logging
import sys

from ..obs.logging import configure_logging
from .registry import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use full workload sizes (slow) instead of quick mode",
    )
    parser.add_argument(
        "--plot", action="store_true", help="render ASCII charts where available"
    )
    parser.add_argument(
        "--output",
        help="write the raw data as a provenance-stamped JSON artifact",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    # Rendered tables are this command's whole point: log them at INFO.
    configure_logging(1)
    logger = logging.getLogger("repro.experiments")

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    collected = {}
    for name in names:
        result = run_experiment(name, quick=not args.full, seed=args.seed)
        logger.info("%s", result.render())
        if args.plot:
            from .plots import render_plots

            chart = render_plots(result)
            if chart:
                logger.info("%s", chart)
        collected[name] = {
            "description": result.description,
            "data": result.data,
        }
    if args.output:
        from .common import write_experiment_data

        path = write_experiment_data(
            collected, args.output, quick=not args.full, seed=args.seed
        )
        logger.info(
            "wrote raw data for %d experiment(s) to %s", len(collected), path
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
