"""CLI: run experiments from the command line.

Usage::

    python -m repro.experiments fig16            # quick mode
    python -m repro.experiments fig16 --full     # Table II test-set sizes
    python -m repro.experiments all              # every experiment, quick
"""

from __future__ import annotations

import argparse
import sys

from .registry import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use full workload sizes (slow) instead of quick mode",
    )
    parser.add_argument(
        "--plot", action="store_true", help="render ASCII charts where available"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name, quick=not args.full, seed=args.seed)
        print(result.render())
        if args.plot:
            from .plots import render_plots

            chart = render_plots(result)
            if chart:
                print()
                print(chart)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
