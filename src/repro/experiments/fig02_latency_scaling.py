"""Fig. 2: GMN-Li latency per pair vs. graph size (V100 and AWB-GCN).

The paper measures 33 ms (V100) / 24 ms (AWB-GCN) per 1000-node pair,
growing to 671 ms / 514 ms at 5000 nodes — far beyond real-time budgets
(~20 ms). We regenerate the series from random graphs built with the
GMN-Li protocol and the platform models.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis.metrics import ResultTable
from ..baselines import pyg_gpu_model
from ..graphs.pairs import GraphPair
from ..graphs.generators import random_graph
from ..models import build_model
from ..platforms import build_platform
from ..trace.profiler import BatchTrace
from ..graphs.batch import GraphPairBatch
from .common import ExperimentResult

__all__ = ["run"]

EXPECTED_DEGREE = 4.0


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = (200, 500, 1000) if quick else (1000, 2000, 3000, 4000, 5000)
    rng = np.random.default_rng(seed)
    model = build_model("GMN-Li", seed=seed)
    gpu = pyg_gpu_model()
    awb = build_platform("AWB-GCN")

    table = ResultTable(
        ["nodes", "V100 ms/pair", "AWB-GCN ms/pair"],
        title="Latency per pair, GMN-Li on random graphs (Fig. 2)",
    )
    data: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        graph = random_graph(size, EXPECTED_DEGREE, rng)
        pair = GraphPair(graph, graph.copy())
        trace = model.forward_pair(pair)
        batch = BatchTrace(GraphPairBatch([pair]), [trace])
        gpu_latency = gpu.simulate_batch(batch).latency_per_pair
        awb_latency = awb.simulate_batch(batch).latency_per_pair
        table.add_row(size, gpu_latency * 1e3, awb_latency * 1e3)
        data[size] = {"PyG-GPU": gpu_latency, "AWB-GCN": awb_latency}

    return ExperimentResult(
        "fig02",
        "GMN-Li latency scaling on V100 and AWB-GCN",
        table,
        {"series": data, "expected_degree": EXPECTED_DEGREE},
    )
