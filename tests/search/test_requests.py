"""Tests for the admission layer: bounds, deadlines, counters."""

import numpy as np
import pytest

from repro.graphs import generate_graph
from repro.obs import metrics_enabled
from repro.search.requests import AdmissionQueue, QueryResponse


@pytest.fixture(scope="module")
def graph():
    return generate_graph("AIDS", np.random.default_rng(0))


class FakeClock:
    """An injectable monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAdmission:
    def test_submit_assigns_increasing_ids(self, graph):
        queue = AdmissionQueue()
        first = queue.submit(graph)
        second = queue.submit(graph)
        assert (first.request_id, second.request_id) == (0, 1)
        assert queue.depth == 2

    def test_full_queue_rejects(self, graph):
        queue = AdmissionQueue(max_depth=2)
        assert queue.submit(graph) is not None
        assert queue.submit(graph) is not None
        assert queue.submit(graph) is None
        assert queue.rejected == 1
        assert queue.admitted == 2

    def test_rejection_frees_no_slot(self, graph):
        queue = AdmissionQueue(max_depth=1)
        queue.submit(graph)
        queue.submit(graph)
        live, dead = queue.take()
        assert len(live) == 1 and not dead

    def test_bad_top_k(self, graph):
        with pytest.raises(ValueError):
            AdmissionQueue().submit(graph, top_k=0)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)

    def test_counters_flow_to_metrics(self, graph):
        with metrics_enabled() as registry:
            queue = AdmissionQueue(max_depth=1)
            queue.submit(graph)
            queue.submit(graph)
            queue.take()
        assert registry.counter("search.serve.admitted") == 1
        assert registry.counter("search.serve.rejected") == 1
        assert registry.gauge("search.serve.queue_depth") == 0


class TestDeadlines:
    def test_expired_requests_shed_at_dequeue(self, graph):
        clock = FakeClock()
        queue = AdmissionQueue(clock=clock)
        stale = queue.submit(graph, timeout_seconds=1.0)
        fresh = queue.submit(graph)  # no deadline: never expires
        clock.now = 5.0
        live, dead = queue.take()
        assert [r.request_id for r in dead] == [stale.request_id]
        assert [r.request_id for r in live] == [fresh.request_id]
        assert queue.expired == 1

    def test_deadline_is_absolute_on_injected_clock(self, graph):
        clock = FakeClock()
        clock.now = 10.0
        queue = AdmissionQueue(clock=clock)
        request = queue.submit(graph, timeout_seconds=2.5)
        assert request.deadline == 12.5
        assert not request.expired(12.5)
        assert request.expired(12.6)

    def test_take_respects_max_items_fifo(self, graph):
        queue = AdmissionQueue()
        ids = [queue.submit(graph).request_id for _ in range(4)]
        live, _ = queue.take(max_items=2)
        assert [r.request_id for r in live] == ids[:2]
        assert queue.depth == 2


class TestQueryResponse:
    def test_ok_property(self):
        assert QueryResponse(0).ok
        assert not QueryResponse(0, status="expired").ok
