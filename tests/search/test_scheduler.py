"""Tests for the batch scheduler: dedup grouping, policies, chunking."""

import numpy as np
import pytest

from repro.graphs import generate_graph
from repro.obs import metrics_enabled
from repro.search.requests import QueryRequest
from repro.search.scheduler import BatchScheduler, SchedulingPolicy


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(1)
    return [generate_graph("AIDS", rng) for _ in range(4)]


def _request(request_id, graph, top_k=3, deadline=None):
    return QueryRequest(
        request_id=request_id,
        graph=graph,
        top_k=top_k,
        submitted_at=0.0,
        deadline=deadline,
    )


class TestPolicyParse:
    def test_accepts_enum_and_value(self):
        assert SchedulingPolicy.parse("fifo") is SchedulingPolicy.FIFO
        assert (
            SchedulingPolicy.parse(SchedulingPolicy.DEADLINE)
            is SchedulingPolicy.DEADLINE
        )

    def test_unknown_lists_known(self):
        with pytest.raises(ValueError, match="size_bucketed"):
            SchedulingPolicy.parse("round_robin")


class TestGrouping:
    def test_identical_requests_collapse(self, graphs):
        scheduler = BatchScheduler()
        requests = [
            _request(0, graphs[0]),
            _request(1, graphs[1]),
            _request(2, graphs[0]),
        ]
        groups = scheduler.group_requests(requests)
        assert [len(g) for g in groups] == [2, 1]
        assert groups[0].primary.request_id == 0
        assert [r.request_id for r in groups[0].requests] == [0, 2]

    def test_top_k_is_part_of_the_key(self, graphs):
        scheduler = BatchScheduler()
        requests = [
            _request(0, graphs[0], top_k=3),
            _request(1, graphs[0], top_k=5),
        ]
        assert len(scheduler.group_requests(requests)) == 2

    def test_dedup_off_keeps_every_request(self, graphs):
        scheduler = BatchScheduler(dedup=False)
        requests = [_request(i, graphs[0]) for i in range(3)]
        assert [len(g) for g in scheduler.group_requests(requests)] == [1, 1, 1]


class TestOrdering:
    def test_fifo_orders_by_arrival(self, graphs):
        scheduler = BatchScheduler(policy="fifo")
        requests = [_request(i, graphs[i % len(graphs)]) for i in range(4)]
        (batch,) = scheduler.build_batches(requests)
        assert [g.primary.request_id for g in batch.groups] == [0, 1, 2, 3]

    def test_deadline_orders_urgent_first(self, graphs):
        scheduler = BatchScheduler(policy="deadline")
        requests = [
            _request(0, graphs[0], deadline=None),
            _request(1, graphs[1], deadline=9.0),
            _request(2, graphs[2], deadline=3.0),
        ]
        (batch,) = scheduler.build_batches(requests)
        assert [g.primary.request_id for g in batch.groups] == [2, 1, 0]

    def test_size_bucketed_orders_by_node_count(self, graphs):
        scheduler = BatchScheduler(policy="size_bucketed")
        requests = [_request(i, graph) for i, graph in enumerate(graphs)]
        (batch,) = scheduler.build_batches(requests)
        sizes = [g.graph.num_nodes for g in batch.groups]
        assert sizes == sorted(sizes)


class TestBatching:
    def test_chunks_respect_max_batch_queries(self, graphs):
        scheduler = BatchScheduler(max_batch_queries=3)
        requests = [_request(i, graphs[i % len(graphs)]) for i in range(8)]
        batches = scheduler.build_batches(requests)
        # 8 requests over 4 distinct graphs -> 4 groups -> sizes 3 + 1.
        assert [batch.num_queries for batch in batches] == [3, 1]
        assert sum(batch.num_requests for batch in batches) == 8
        assert [batch.batch_id for batch in batches] == [0, 1]

    def test_empty_round(self):
        assert BatchScheduler().build_batches([]) == []

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_batch_queries=0)

    def test_description_mentions_policy_and_sizes(self, graphs):
        scheduler = BatchScheduler(policy="size_bucketed")
        (batch,) = scheduler.build_batches(
            [_request(0, graphs[0]), _request(1, graphs[0])]
        )
        description = batch.get_description()
        assert "size_bucketed" in description
        assert "1 queries serving 2 requests" in description

    def test_dedup_counter(self, graphs):
        with metrics_enabled() as registry:
            scheduler = BatchScheduler()
            scheduler.build_batches(
                [_request(i, graphs[0]) for i in range(3)]
            )
        assert registry.counter("search.serve.deduped_requests") == 2
        assert registry.counter("search.serve.batches") == 1
