"""Tests for the sharded execution layer."""

import numpy as np
import pytest

from repro.graphs import generate_graph
from repro.models import build_model
from repro.obs import LATENCY_BUCKETS, metrics_enabled
from repro.obs.context import RequestContext, RequestTracker
from repro.perf.parallel import _merge_worker_telemetry
from repro.search.executor import (
    ShardedExecutor,
    _dedup_scores,
    _shard_task,
    shard_bounds,
)
from repro.search.requests import QueryRequest
from repro.search.scheduler import BatchScheduler
from repro.search.storage import graph_signature, graphs_to_npz_bytes


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(2)
    base = [generate_graph("AIDS", rng) for _ in range(5)]
    # Clones exercise the candidate dedup; duplicates are interleaved.
    return base + [base[1], base[3]]


@pytest.fixture(scope="module")
def model(database):
    return build_model("GMN-Li", input_dim=database[0].feature_dim)


def _batch(scheduler, graphs, top_k=3):
    requests = [
        QueryRequest(request_id=i, graph=graph, top_k=top_k, submitted_at=0.0)
        for i, graph in enumerate(graphs)
    ]
    (batch,) = scheduler.build_batches(requests)
    return batch


class TestShardBounds:
    @pytest.mark.parametrize("size,shards", [(1, 1), (7, 3), (8, 3), (5, 9)])
    def test_covers_every_index_once(self, size, shards):
        bounds = shard_bounds(size, shards)
        covered = [i for start, stop in bounds for i in range(start, stop)]
        assert covered == list(range(size))
        assert len(bounds) <= min(shards, size)

    def test_empty_database(self):
        assert shard_bounds(0, 4) == []

    def test_near_equal_split(self):
        sizes = [stop - start for start, stop in shard_bounds(10, 3)]
        assert max(sizes) - min(sizes) <= 1 or sizes == [4, 4, 2]


class TestDedupScores:
    def test_duplicates_scored_once(self, database):
        calls = []

        def score(graph):
            calls.append(graph)
            return float(graph.num_nodes)

        signatures = [graph_signature(graph) for graph in database]
        scores, saved = _dedup_scores(score, database, signatures)
        assert saved == 2  # the two planted clones
        assert len(calls) == len(database) - 2
        # Broadcast scores are bit-identical to their representative.
        assert scores[5] == scores[1]
        assert scores[6] == scores[3]


class TestExecutor:
    def test_rankings_match_flat_reference(self, database, model):
        from repro.search import SimilaritySearchIndex

        index = SimilaritySearchIndex(model)
        index.add_many(database)
        executor = ShardedExecutor(model, index._graphs, num_shards=3, workers=1)
        queries = [database[0], database[4]]
        batch = _batch(BatchScheduler(), queries)
        rankings = executor.run_batch(batch)
        for query, ranking in zip(queries, rankings):
            assert list(ranking) == index._query_flat(query, top_k=3)

    def test_empty_database_yields_empty_rankings(self, database, model):
        executor = ShardedExecutor(model, [])
        batch = _batch(BatchScheduler(), [database[0]])
        assert executor.run_batch(batch) == [tuple()]

    def test_candidate_selection_restricts_and_matches_flat(
        self, database, model
    ):
        """Scoring a candidate subset ranks exactly the flat order
        restricted to that subset (database indices preserved)."""
        from repro.search import SimilaritySearchIndex

        index = SimilaritySearchIndex(model)
        index.add_many(database)
        executor = ShardedExecutor(
            model, index._graphs, num_shards=2, workers=1
        )
        batch = _batch(BatchScheduler(), [database[0]], top_k=3)
        selection = np.array([0, 2, 5, 6], dtype=np.int64)
        (ranking,) = executor.run_batch(batch, candidates=selection)
        flat = index._query_flat(database[0], top_k=len(database))
        expected = [r for r in flat if r.index in set(selection.tolist())][:3]
        assert list(ranking) == expected

    def test_empty_candidate_selection(self, database, model):
        executor = ShardedExecutor(model, list(database), workers=1)
        batch = _batch(BatchScheduler(), [database[0]])
        candidates = np.empty(0, dtype=np.int64)
        assert executor.run_batch(batch, candidates=candidates) == [tuple()]

    def test_out_of_range_candidates_rejected(self, database, model):
        executor = ShardedExecutor(model, list(database), workers=1)
        batch = _batch(BatchScheduler(), [database[0]])
        with pytest.raises(IndexError):
            executor.run_batch(
                batch, candidates=np.array([0, len(database)])
            )

    def test_candidate_dedup_counter(self, database, model):
        executor = ShardedExecutor(model, list(database), workers=1)
        batch = _batch(BatchScheduler(), [database[0]])
        with metrics_enabled() as registry:
            executor.run_batch(batch)
        assert registry.counter("search.serve.candidate_dedup_hits") == 2

    def test_signature_cache_follows_database_growth(self, database, model):
        graphs = list(database[:3])
        executor = ShardedExecutor(model, graphs)
        assert len(executor.signatures()) == 3
        graphs.append(database[3])
        assert len(executor.signatures()) == 4
        del graphs[1:]
        assert len(executor.signatures()) == 1


class TestShardTask:
    def test_worker_body_in_process(self, database, model):
        """Exercise the worker path against a real shared-memory segment."""
        from multiprocessing import shared_memory

        image = graphs_to_npz_bytes(database)
        segment = shared_memory.SharedMemory(create=True, size=len(image))
        try:
            segment.buf[: len(image)] = image
            start, stop = 2, len(database)
            task = (
                segment.name,
                len(image),
                start,
                stop,
                None,  # contiguous shard, no candidate selection
                model,
                None,
                [database[0]],
                None,  # no request contexts: metrics-only telemetry
                True,
            )
            shard_start, vectors, payload = _shard_task(task)
        finally:
            # _shard_task unregistered the segment (it assumes it runs in
            # a worker process); restore this process's registration so
            # unlink balances the resource tracker's books.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(segment._name, "shared_memory")
            except Exception:
                pass
            segment.close()
            segment.unlink()
        assert shard_start == start
        assert len(vectors) == 1 and vectors[0].shape == (stop - start,)
        # The shard holds database[2:] — the clone of database[3] has its
        # representative in-shard, so per-shard dedup saves one pass.
        counters = payload["metrics"]["counters"]
        assert counters["search.serve.candidate_dedup_hits"] == 1
        assert "spans" not in payload  # no contexts shipped, no spans back

        # The raw scores equal in-process scoring of the same slice.
        from repro.search.executor import _pair_score

        expected = [
            _pair_score(model, None, candidate, database[0])
            for candidate in database[start:stop]
        ]
        assert vectors[0].tolist() == expected


class TestWorkerTelemetry:
    """Request telemetry across the shm worker boundary (in-process).

    ``_shard_task`` is exercised against a real shared-memory segment —
    the same body the pool runs — and its payload merged with
    ``_merge_worker_telemetry``, so the cross-process contract is
    covered even on single-core hosts where the pool path never runs.
    """

    def _run_worker(self, database, model, contexts, queries=None):
        from multiprocessing import shared_memory

        image = graphs_to_npz_bytes(database)
        segment = shared_memory.SharedMemory(create=True, size=len(image))
        try:
            segment.buf[: len(image)] = image
            task = (
                segment.name,
                len(image),
                0,
                len(database),
                None,  # contiguous shard, no candidate selection
                model,
                None,
                queries if queries is not None else [database[0]],
                contexts,
                True,
            )
            return _shard_task(task)
        finally:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(segment._name, "shared_memory")
            except Exception:
                pass
            segment.close()
            segment.unlink()

    def test_context_crosses_the_worker_boundary(self, database, model):
        context = RequestContext.make(42, tenant="acme")
        _, _, payload = self._run_worker(
            database, model, [context.to_wire()]
        )
        (span_payload,) = payload["spans"]
        assert span_payload["request_id"] == 42
        assert span_payload["stage"] == "execute.shard"
        assert span_payload["parent"] == "execute"
        assert span_payload["attrs"]["shard"] == f"0:{len(database)}"
        assert "obs.context.worker_failures" not in (
            payload["metrics"]["counters"]
        )

    def test_nondefault_bounds_survive_the_merge(self, database, model):
        """Satellite check: LATENCY_BUCKETS histograms merge exactly.

        The worker's ``search.serve.shard_seconds`` histogram uses
        non-default bucket bounds; a merge that re-created it with
        DEFAULT_BUCKETS would corrupt every quantile.
        """
        _, _, first = self._run_worker(
            database, model, [RequestContext.make(1).to_wire()]
        )
        _, _, second = self._run_worker(
            database,
            model,
            [RequestContext.make(2).to_wire(), None],
            queries=[database[0], database[1]],
        )
        with metrics_enabled() as registry:
            spans = _merge_worker_telemetry(first)
            spans += _merge_worker_telemetry(second)
        merged = registry.histogram("search.serve.shard_seconds")
        assert merged.bounds == LATENCY_BUCKETS
        assert merged.count == 3  # one query + two queries
        worker_total = (
            first["metrics"]["histograms"][
                "search.serve.shard_seconds"
            ]["total"]
            + second["metrics"]["histograms"][
                "search.serve.shard_seconds"
            ]["total"]
        )
        assert merged.total == pytest.approx(worker_total)
        # Spans from both workers survive and rejoin request trees.
        tracker = RequestTracker()
        assert tracker.ingest(spans, parent="execute") == 2
        assert tracker.request_ids() == [1, 2]

    def test_malformed_context_counts_worker_failure(
        self, database, model
    ):
        _, vectors, payload = self._run_worker(
            database, model, [{"deadline": 1.0}]  # no request_id
        )
        assert len(vectors) == 1  # scoring is unaffected
        counters = payload["metrics"]["counters"]
        assert counters["obs.context.worker_failures"] == 1
        assert "spans" not in payload

    def test_executor_ingests_worker_spans(self, database, model):
        """End-to-end: tracker-on run_batch yields shard spans."""
        tracker = RequestTracker()
        executor = ShardedExecutor(
            model, list(database), workers=1, tracker=tracker
        )
        request = QueryRequest(
            request_id=0,
            graph=database[0],
            top_k=3,
            submitted_at=0.0,
            context=RequestContext.make(0),
        )
        (batch,) = BatchScheduler().build_batches([request])
        executor.run_batch(batch, pending_since=0.0)
        spans = {span.stage for span in tracker.spans_for(0)}
        assert {"pending", "execute", "execute.shard", "rank"} <= spans
        (shard_span,) = [
            span
            for span in tracker.spans_for(0)
            if span.stage == "execute.shard"
        ]
        assert shard_span.parent == "execute"
