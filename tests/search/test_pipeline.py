"""Tests for the wired serving pipeline (admission → … → rank)."""

import numpy as np
import pytest

from repro.graphs import generate_graph, substitute_edges
from repro.models import build_model
from repro.obs import metrics_enabled
from repro.obs.context import RequestTracker
from repro.obs.exemplars import ExemplarBuffer
from repro.obs.timeseries import TimeseriesRecorder
from repro.search import SimilaritySearchIndex


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(3)
    return [generate_graph("AIDS", rng) for _ in range(6)]


@pytest.fixture(scope="module")
def index(database):
    model = build_model("GMN-Li", input_dim=database[0].feature_dim)
    idx = SimilaritySearchIndex(model)
    idx.add_many(database)
    return idx


class TestServe:
    def test_responses_align_with_submissions(self, index, database):
        rng = np.random.default_rng(4)
        stream = [
            database[0],
            substitute_edges(database[2], 1, rng),
            database[0],  # hot duplicate, deduped by the scheduler
        ]
        pipeline = index.pipeline(max_batch_queries=2)
        responses = pipeline.serve(stream, top_k=3)
        assert len(responses) == len(stream)
        assert [r.request_id for r in responses] == [0, 1, 2]
        assert all(r.ok for r in responses)
        # Duplicate submissions share one frozen ranking.
        assert responses[0].results == responses[2].results
        for graph, response in zip(stream, responses):
            assert list(response.results) == index._query_flat(graph, top_k=3)

    def test_rejected_submission_is_none(self, index, database):
        pipeline = index.pipeline(max_queue_depth=2)
        responses = pipeline.serve(database[:4], top_k=1)
        assert responses[0] is not None and responses[1] is not None
        assert responses[2] is None and responses[3] is None
        assert pipeline.stats()["rejected"] == 2.0

    def test_expired_requests_get_expired_status(self, index, database):
        clock = FakeClock()
        pipeline = index.pipeline(clock=clock)
        pipeline.submit(database[0], top_k=2, timeout_seconds=1.0)
        pipeline.submit(database[1], top_k=2)
        clock.now = 5.0
        responses = pipeline.run_until_drained()
        assert responses[0].status == "expired"
        assert responses[0].results == ()
        assert responses[1].ok
        assert list(responses[1].results) == index._query_flat(
            database[1], top_k=2
        )

    def test_incremental_adds_served_without_rebuild(self, database):
        model = build_model("GMN-Li", input_dim=database[0].feature_dim)
        idx = SimilaritySearchIndex(model)
        idx.add_many(database[:3])
        pipeline = idx.pipeline()
        first = pipeline.serve([database[0]], top_k=3)[0]
        idx.add(database[4])
        second = pipeline.serve([database[0]], top_k=4)[0]
        assert len(first.results) == 3
        assert len(second.results) == 4
        assert {r.index for r in second.results} == {0, 1, 2, 3}


class TestStats:
    def test_counts_and_latency_quantiles(self, index, database):
        with metrics_enabled():
            pipeline = index.pipeline()
            pipeline.serve(database[:3], top_k=1)
            stats = pipeline.stats()
        assert stats["admitted"] == 3.0
        assert stats["completed"] == 3.0
        assert stats["queue_depth"] == 0.0
        assert stats["latency_p50_seconds"] > 0.0
        assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]

    def test_stats_without_metrics_has_no_quantiles(self, index, database):
        pipeline = index.pipeline()
        pipeline.serve([database[0]], top_k=1)
        stats = pipeline.stats()
        assert "latency_p50_seconds" not in stats
        assert stats["completed"] == 1.0


class TestTelemetry:
    STAGES = (
        "admission",
        "schedule",
        "pending",
        "execute",
        "rank",
        "respond",
    )

    def _traced_pipeline(self, index, **kwargs):
        tracker = RequestTracker()
        exemplars = ExemplarBuffer(k_slowest=2)
        pipeline = index.pipeline(
            tracker=tracker, exemplars=exemplars, **kwargs
        )
        return pipeline, tracker, exemplars

    def test_every_response_joins_to_a_full_span_tree(
        self, index, database
    ):
        pipeline, tracker, _ = self._traced_pipeline(
            index, max_batch_queries=2
        )
        stream = [database[0], database[1], database[0], database[2]]
        responses = pipeline.serve(stream, top_k=3)
        assert all(r.ok for r in responses)
        for response in responses:
            budgets = tracker.budgets(response.request_id)
            assert set(budgets) == set(self.STAGES)
            tree = tracker.tree(response.request_id)
            execute = next(
                node
                for node in tree["spans"]
                if node["stage"] == "execute"
            )
            # Every tree carries per-shard execution detail — dedup
            # followers via replication, primaries natively.
            assert execute["children"], tree
            assert all(
                child["stage"] == "execute.shard"
                for child in execute["children"]
            )

    def test_budgets_sum_to_measured_latency(self, index, database):
        pipeline, tracker, _ = self._traced_pipeline(index)
        responses = pipeline.serve(database[:4], top_k=2)
        for response in responses:
            budget = sum(tracker.budgets(response.request_id).values())
            # Stage spans share boundary clock readings, so attribution
            # is exact (the ISSUE floor is >= 95%).
            assert budget == pytest.approx(
                response.latency_seconds, rel=1e-9
            )

    def test_baggage_travels_with_the_request(self, index, database):
        pipeline, _, _ = self._traced_pipeline(index)
        request = pipeline.submit(database[0], top_k=1, tenant="acme")
        assert request.context.bag() == {"tenant": "acme"}
        pipeline.run_until_drained()

    def test_dedup_followers_share_replicated_shard_spans(
        self, index, database
    ):
        pipeline, tracker, _ = self._traced_pipeline(index)
        responses = pipeline.serve([database[0], database[0]], top_k=1)
        assert responses[0].results == responses[1].results
        follower_tree = tracker.tree(1)
        execute = next(
            node
            for node in follower_tree["spans"]
            if node["stage"] == "execute"
        )
        assert execute["children"]
        assert all(
            child["attrs"].get("replicated_from") == "0"
            for child in execute["children"]
        )
        annotations = tracker.annotations_for(1)
        assert annotations["primary"] == "0"
        assert annotations["group_size"] == "2"

    def test_expired_request_has_admission_only_tree(
        self, index, database
    ):
        clock = FakeClock()
        pipeline, tracker, exemplars = self._traced_pipeline(
            index, clock=clock
        )
        pipeline.submit(database[0], top_k=1, timeout_seconds=1.0)
        clock.now = 5.0
        (response,) = pipeline.run_until_drained()
        assert response.status == "expired"
        budgets = tracker.budgets(response.request_id)
        assert set(budgets) == {"admission", "respond"}
        assert sum(budgets.values()) == pytest.approx(
            response.latency_seconds
        )
        (span,) = [
            s
            for s in tracker.spans_for(response.request_id)
            if s.stage == "admission"
        ]
        assert span.attr_dict() == {"expired": "True"}
        # Expirations are always retained as exemplars.
        assert [e.request_id for e in exemplars.expired()] == [0]

    def test_exemplars_keep_slowest_trees(self, index, database):
        pipeline, _, exemplars = self._traced_pipeline(index)
        pipeline.serve(database[:4], top_k=1)
        slowest = exemplars.slowest()
        assert len(slowest) == 2  # k_slowest
        assert all(e.tree is not None for e in slowest)
        assert (
            slowest[0].latency_seconds >= slowest[1].latency_seconds
        )

    def test_exemplars_without_tracker_have_no_tree(
        self, index, database
    ):
        exemplars = ExemplarBuffer(k_slowest=1)
        pipeline = index.pipeline(exemplars=exemplars)
        pipeline.serve([database[0]], top_k=1)
        (exemplar,) = exemplars.slowest()
        assert exemplar.tree is None

    def test_budget_histograms_recorded_per_stage(self, index, database):
        with metrics_enabled() as registry:
            pipeline, _, _ = self._traced_pipeline(index)
            pipeline.serve(database[:2], top_k=1)
        for stage in self.STAGES:
            histogram = registry.histogram(
                "search.serve.budget_seconds", stage=stage
            )
            assert histogram.count == 2, stage

    def test_recorder_snapshots_once_per_round(self, index, database):
        recorder = TimeseriesRecorder(interval_seconds=1e-9)
        with metrics_enabled():
            pipeline = index.pipeline(recorder=recorder)
            pipeline.serve(database[:2], top_k=1)
            stats = pipeline.stats()
        assert len(recorder.windows) >= 1
        assert stats["windows"] == float(len(recorder.windows))
        window = recorder.windows[0]
        assert window.counters["search.serve.admitted"] == 2.0

    def test_stats_report_tracker_health(self, index, database):
        pipeline, tracker, exemplars = self._traced_pipeline(index)
        pipeline.serve(database[:3], top_k=1)
        stats = pipeline.stats()
        assert stats["tracked_requests"] == 3.0
        assert stats["dropped_spans"] == 0.0
        assert stats["exemplars"] == float(len(exemplars))

    def test_traced_results_stay_bit_identical_to_flat(
        self, index, database
    ):
        pipeline, _, _ = self._traced_pipeline(index, max_batch_queries=2)
        with metrics_enabled():
            responses = pipeline.serve(database[:4], top_k=3)
        for graph, response in zip(database[:4], responses):
            assert list(response.results) == index._query_flat(
                graph, top_k=3
            )


class TestPolicies:
    @pytest.mark.parametrize("policy", ["fifo", "deadline", "size_bucketed"])
    def test_every_policy_matches_flat(self, index, database, policy):
        rng = np.random.default_rng(5)
        stream = [
            substitute_edges(database[i % len(database)], 1, rng)
            for i in range(4)
        ]
        pipeline = index.pipeline(policy=policy, max_batch_queries=2)
        responses = pipeline.serve(stream, top_k=3)
        for graph, response in zip(stream, responses):
            assert list(response.results) == index._query_flat(graph, top_k=3)
