"""Tests for the wired serving pipeline (admission → … → rank)."""

import numpy as np
import pytest

from repro.graphs import generate_graph, substitute_edges
from repro.models import build_model
from repro.obs import metrics_enabled
from repro.search import SimilaritySearchIndex


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(3)
    return [generate_graph("AIDS", rng) for _ in range(6)]


@pytest.fixture(scope="module")
def index(database):
    model = build_model("GMN-Li", input_dim=database[0].feature_dim)
    idx = SimilaritySearchIndex(model)
    idx.add_many(database)
    return idx


class TestServe:
    def test_responses_align_with_submissions(self, index, database):
        rng = np.random.default_rng(4)
        stream = [
            database[0],
            substitute_edges(database[2], 1, rng),
            database[0],  # hot duplicate, deduped by the scheduler
        ]
        pipeline = index.pipeline(max_batch_queries=2)
        responses = pipeline.serve(stream, top_k=3)
        assert len(responses) == len(stream)
        assert [r.request_id for r in responses] == [0, 1, 2]
        assert all(r.ok for r in responses)
        # Duplicate submissions share one frozen ranking.
        assert responses[0].results == responses[2].results
        for graph, response in zip(stream, responses):
            assert list(response.results) == index._query_flat(graph, top_k=3)

    def test_rejected_submission_is_none(self, index, database):
        pipeline = index.pipeline(max_queue_depth=2)
        responses = pipeline.serve(database[:4], top_k=1)
        assert responses[0] is not None and responses[1] is not None
        assert responses[2] is None and responses[3] is None
        assert pipeline.stats()["rejected"] == 2.0

    def test_expired_requests_get_expired_status(self, index, database):
        clock = FakeClock()
        pipeline = index.pipeline(clock=clock)
        pipeline.submit(database[0], top_k=2, timeout_seconds=1.0)
        pipeline.submit(database[1], top_k=2)
        clock.now = 5.0
        responses = pipeline.run_until_drained()
        assert responses[0].status == "expired"
        assert responses[0].results == ()
        assert responses[1].ok
        assert list(responses[1].results) == index._query_flat(
            database[1], top_k=2
        )

    def test_incremental_adds_served_without_rebuild(self, database):
        model = build_model("GMN-Li", input_dim=database[0].feature_dim)
        idx = SimilaritySearchIndex(model)
        idx.add_many(database[:3])
        pipeline = idx.pipeline()
        first = pipeline.serve([database[0]], top_k=3)[0]
        idx.add(database[4])
        second = pipeline.serve([database[0]], top_k=4)[0]
        assert len(first.results) == 3
        assert len(second.results) == 4
        assert {r.index for r in second.results} == {0, 1, 2, 3}


class TestStats:
    def test_counts_and_latency_quantiles(self, index, database):
        with metrics_enabled():
            pipeline = index.pipeline()
            pipeline.serve(database[:3], top_k=1)
            stats = pipeline.stats()
        assert stats["admitted"] == 3.0
        assert stats["completed"] == 3.0
        assert stats["queue_depth"] == 0.0
        assert stats["latency_p50_seconds"] > 0.0
        assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]

    def test_stats_without_metrics_has_no_quantiles(self, index, database):
        pipeline = index.pipeline()
        pipeline.serve([database[0]], top_k=1)
        stats = pipeline.stats()
        assert "latency_p50_seconds" not in stats
        assert stats["completed"] == 1.0


class TestPolicies:
    @pytest.mark.parametrize("policy", ["fifo", "deadline", "size_bucketed"])
    def test_every_policy_matches_flat(self, index, database, policy):
        rng = np.random.default_rng(5)
        stream = [
            substitute_edges(database[i % len(database)], 1, rng)
            for i in range(4)
        ]
        pipeline = index.pipeline(policy=policy, max_batch_queries=2)
        responses = pipeline.serve(stream, top_k=3)
        for graph, response in zip(stream, responses):
            assert list(response.results) == index._query_flat(graph, top_k=3)
