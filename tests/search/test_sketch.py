"""Tests for sketch-gated candidate retrieval (EMF/WL MinHash index)."""

import numpy as np
import pytest

from repro.graphs import Graph, erdos_renyi_graph, generate_graph, substitute_edges
from repro.models import build_model
from repro.search import SimilaritySearchIndex
from repro.search.sketch import (
    EMPTY_SLOT,
    CandidateRetriever,
    SketchConfig,
    SketchStore,
    graph_tokens,
    minhash_signature,
    sketch_signature,
)


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(2)
    return [generate_graph("AIDS", rng) for _ in range(10)]


class TestSketchConfig:
    def test_band_rows_must_divide_num_perm(self):
        with pytest.raises(ValueError, match="band_rows"):
            SketchConfig(num_perm=64, band_rows=5)

    def test_positive_num_perm_required(self):
        with pytest.raises(ValueError, match="num_perm"):
            SketchConfig(num_perm=0)

    def test_recall_floor_range(self):
        with pytest.raises(ValueError, match="recall_floor"):
            SketchConfig(recall_floor=1.5)

    def test_num_bands(self):
        assert SketchConfig(num_perm=64, band_rows=4).num_bands == 16

    def test_candidate_floor(self):
        config = SketchConfig(min_candidates=8, recall_floor=0.5)
        assert config.candidate_floor(top_k=3, database_size=100) == 50
        assert config.candidate_floor(top_k=3, database_size=10) == 8
        # Never exceeds the database.
        assert config.candidate_floor(top_k=3, database_size=4) == 4

    def test_params_round_trip(self):
        config = SketchConfig(num_perm=32, band_rows=8, wl_rounds=1, seed=7)
        restored = SketchConfig.from_params(config.to_params())
        assert restored.num_perm == 32
        assert restored.band_rows == 8
        assert restored.wl_rounds == 1
        assert restored.seed == 7
        assert config.compatible_with(restored.to_params())
        assert not SketchConfig().compatible_with(config.to_params())


class TestSignatures:
    def test_deterministic(self, database):
        config = SketchConfig()
        a = sketch_signature(database[0], config)
        b = sketch_signature(database[0], config)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.uint64
        assert a.shape == (config.num_perm,)

    def test_clones_share_signature(self, database):
        config = SketchConfig()
        g = database[1]
        clone = Graph(
            g.num_nodes,
            list(zip(g.src.tolist(), g.dst.tolist())),
            g.node_features.copy(),
        )
        np.testing.assert_array_equal(
            sketch_signature(g, config), sketch_signature(clone, config)
        )

    def test_empty_graph_is_all_empty_slots(self):
        config = SketchConfig()
        dim = 4
        empty = Graph(0, [], np.zeros((0, dim)))
        signature = sketch_signature(empty, config)
        assert (signature == EMPTY_SLOT).all()
        assert graph_tokens(empty, config).size == 0

    def test_perturbation_changes_some_slots(self, database):
        config = SketchConfig()
        rng = np.random.default_rng(0)
        base = sketch_signature(database[2], config)
        mutated = sketch_signature(
            substitute_edges(database[2], 3, rng), config
        )
        assert (base != mutated).any()
        # Shared features keep most slots agreeing.
        assert (base == mutated).any()

    def test_seed_changes_permutations(self, database):
        tokens = graph_tokens(database[3], SketchConfig())
        a = minhash_signature(tokens, SketchConfig(seed=0))
        b = minhash_signature(tokens, SketchConfig(seed=1))
        assert (a != b).any()


class TestSketchStore:
    def test_lazy_sync_tracks_growth(self, database):
        graphs = list(database[:3])
        store = SketchStore(graphs)
        assert len(store) == 0
        store.sync()
        assert len(store) == 3
        graphs.append(database[3])
        store.sync()
        assert len(store) == 4
        np.testing.assert_array_equal(
            store.signature(3), sketch_signature(database[3], store.config)
        )

    def test_preloaded_signatures_must_match_shape(self, database):
        with pytest.raises(ValueError, match="num_perm"):
            SketchStore(
                list(database[:2]),
                SketchConfig(num_perm=64),
                signatures=np.zeros((2, 32), dtype=np.uint64),
            )
        with pytest.raises(ValueError, match="more preloaded"):
            SketchStore(
                list(database[:1]),
                SketchConfig(num_perm=64),
                signatures=np.zeros((2, 64), dtype=np.uint64),
            )

    def test_matrix_shape(self, database):
        store = SketchStore(list(database[:4]), SketchConfig(num_perm=32))
        assert store.matrix().shape == (4, 32)


class TestCandidateRetriever:
    def test_member_query_retrieves_itself(self, database):
        store = SketchStore(list(database))
        retriever = CandidateRetriever(store)
        candidates = retriever.retrieve(database[4], top_k=2)
        assert 4 in candidates.tolist()

    def test_floor_respected(self, database):
        config = SketchConfig(min_candidates=0, recall_floor=0.5)
        retriever = CandidateRetriever(SketchStore(list(database), config))
        candidates = retriever.retrieve(database[0], top_k=2)
        floor = config.candidate_floor(2, len(database))
        assert len(candidates) >= floor
        assert retriever.queries == 1
        assert retriever.candidates_retrieved == len(candidates)

    def test_retrieve_batch_is_the_union(self, database):
        retriever = CandidateRetriever(SketchStore(list(database)))
        a = retriever.retrieve(database[0], top_k=2)
        b = retriever.retrieve(database[5], top_k=2)
        union = retriever.retrieve_batch(
            [(database[0], 2), (database[5], 2)]
        )
        np.testing.assert_array_equal(
            union, np.unique(np.concatenate([a, b]))
        )

    def test_incremental_growth_reindexes_new_graphs(self, database):
        graphs = list(database[:6])
        retriever = CandidateRetriever(SketchStore(graphs))
        retriever.retrieve(database[0], top_k=2)
        graphs.append(database[7])
        candidates = retriever.retrieve(database[7], top_k=2)
        assert 6 in candidates.tolist()

    def test_empty_database(self, database):
        retriever = CandidateRetriever(SketchStore([]))
        assert retriever.retrieve(database[0], top_k=3).size == 0

    def test_stats_mirror_counters(self, database):
        retriever = CandidateRetriever(SketchStore(list(database)))
        retriever.retrieve(database[0], top_k=2)
        stats = retriever.stats()
        assert stats["sketch_queries"] == 1.0
        assert stats["sketch_candidates"] == float(
            retriever.candidates_retrieved
        )


class TestSketchMatchesFlat:
    """Property tests: sketch-gated serving reproduces the flat path's
    top-k bit for bit (satellite of the ``search.sketch_vs_flat``
    check, exercised here without the validation harness)."""

    def _assert_matches(self, index, queries, top_k, config):
        flat = [index._query_flat(graph, top_k) for graph in queries]
        pipeline = index.pipeline(
            retrieval="sketch", sketch_config=config, workers=1
        )
        served = pipeline.serve(queries, top_k)
        for position, (response, expected) in enumerate(zip(served, flat)):
            assert response is not None
            assert list(response.results) == expected, position
        return pipeline

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_er_databases(self, seed):
        rng = np.random.default_rng(seed)
        pool = [erdos_renyi_graph(10, 18, rng) for _ in range(9)]
        index = SimilaritySearchIndex(
            build_model("GMN-Li", input_dim=pool[0].feature_dim, seed=0)
        )
        index.add_many(pool)
        queries = [pool[0], substitute_edges(pool[2], 1, rng), pool[5]]
        config = SketchConfig(min_candidates=3, recall_floor=0.85)
        self._assert_matches(index, queries, top_k=3, config=config)

    def test_adversarial_database(self, database):
        """Empty sides, NaN rows, and duplicate-heavy clones together."""
        dim = database[0].feature_dim
        empty = Graph(0, [], np.zeros((0, dim)))
        nan_graph = Graph(2, [(0, 1)], np.full((2, dim), np.nan))
        entries = (
            database[:4] + [database[0]] * 3 + [empty, nan_graph, database[1]]
        )
        index = SimilaritySearchIndex(
            build_model("GMN-Li", input_dim=dim, seed=0)
        )
        index.add_many(entries)
        queries = [database[0], empty, nan_graph, database[3]]
        config = SketchConfig(min_candidates=4, recall_floor=0.9)
        pipeline = self._assert_matches(index, queries, top_k=4, config=config)
        scanned = len(queries) * len(entries)
        assert 0 < pipeline.retriever.candidates_retrieved < scanned
