"""Tests for the similarity search subsystem."""

import numpy as np
import pytest

from repro.graphs import generate_graph, substitute_edges
from repro.models import build_model, train_scorer
from repro.graphs import load_dataset
from repro.search import SimilaritySearchIndex


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(0)
    return [generate_graph("GITHUB", rng) for _ in range(8)]


@pytest.fixture(scope="module")
def index(database):
    model = build_model("GMN-Li", input_dim=database[0].feature_dim)
    idx = SimilaritySearchIndex(model)
    idx.add_many(database)
    return idx


class TestDatabase:
    def test_add_returns_indices(self, database):
        model = build_model("GMN-Li", input_dim=database[0].feature_dim)
        idx = SimilaritySearchIndex(model)
        assert idx.add_many(database[:3]) == [0, 1, 2]
        assert len(idx) == 3
        assert idx.graph(1) is database[1]

    def test_query_empty_index_rejected(self, database):
        model = build_model("GMN-Li", input_dim=database[0].feature_dim)
        idx = SimilaritySearchIndex(model)
        with pytest.raises(ValueError):
            idx.query(database[0])


class TestQuery:
    def test_planted_clone_ranks_first(self, index, database):
        rng = np.random.default_rng(7)
        query = substitute_edges(database[3], 1, rng)
        results = index.query(query, top_k=3)
        assert results[0].index == 3

    def test_top_k_respected(self, index, database):
        results = index.query(database[0], top_k=2)
        assert len(results) == 2
        assert results[0].score >= results[1].score

    def test_bad_top_k(self, index, database):
        with pytest.raises(ValueError):
            index.query(database[0], top_k=0)

    def test_emf_model_gives_same_ranking(self, database):
        dim = database[0].feature_dim
        dense = SimilaritySearchIndex(build_model("GMN-Li", input_dim=dim))
        filtered = SimilaritySearchIndex(
            build_model("GMN-Li", input_dim=dim, use_emf=True)
        )
        dense.add_many(database)
        filtered.add_many(database)
        rng = np.random.default_rng(3)
        query = substitute_edges(database[5], 1, rng)
        a = [r.index for r in dense.query(query, top_k=4)]
        b = [r.index for r in filtered.query(query, top_k=4)]
        assert a == b

    def test_trained_scorer_used(self, database):
        dim = database[0].feature_dim
        model = build_model("GMN-Li", input_dim=dim)
        train_pairs = load_dataset("GITHUB", seed=2, num_pairs=16)
        head = train_scorer(model, train_pairs, epochs=100)
        idx = SimilaritySearchIndex(model, scorer=head)
        idx.add_many(database)
        results = idx.query(database[0], top_k=2)
        assert all(0.0 <= r.score <= 1.0 for r in results)


class TestPlanning:
    def test_latency_positive(self, index, database):
        latency = index.estimate_pair_latency(database[0], "CEGMA")
        assert latency > 0

    def test_cegma_supports_larger_database(self, index, database):
        query = database[0]
        cegma = index.max_database_size(query, 1.0, "CEGMA")
        gpu = index.max_database_size(query, 1.0, "PyG-GPU")
        assert cegma > gpu

    def test_plan_report_structure(self, index, database):
        report = index.plan(
            database[0], deadline_seconds=1.0, platforms=("CEGMA", "PyG-GPU")
        )
        assert set(report) == {"CEGMA", "PyG-GPU"}
        for row in report.values():
            assert row["search_seconds"] == pytest.approx(
                row["per_pair_seconds"] * len(index)
            )

    def test_unknown_platform(self, index, database):
        with pytest.raises(KeyError):
            index.estimate_pair_latency(database[0], "TPU")

    def test_bad_deadline(self, index, database):
        with pytest.raises(ValueError):
            index.max_database_size(database[0], 0.0)


class TestQueryMany:
    def test_results_in_query_order(self, index, database):
        rng = np.random.default_rng(5)
        queries = [
            substitute_edges(database[1], 1, rng),
            substitute_edges(database[6], 1, rng),
        ]
        results = index.query_many(queries, top_k=1)
        assert len(results) == 2
        assert results[0][0].index == 1
        assert results[1][0].index == 6


class TestPersistence:
    def test_save_load_round_trip(self, index, database, tmp_path):
        path = tmp_path / "db.npz"
        index.save(path)
        from repro.search import SimilaritySearchIndex

        restored = SimilaritySearchIndex.load(path, index.model)
        assert len(restored) == len(index)
        assert restored.graph(2) == index.graph(2)

    def test_loaded_index_ranks_identically(self, index, database, tmp_path):
        path = tmp_path / "db.npz"
        index.save(path)
        from repro.search import SimilaritySearchIndex

        restored = SimilaritySearchIndex.load(path, index.model)
        rng = np.random.default_rng(9)
        query = substitute_edges(database[4], 1, rng)
        original = [(r.index, r.score) for r in index.query(query, top_k=3)]
        reloaded = [(r.index, r.score) for r in restored.query(query, top_k=3)]
        assert original == reloaded
