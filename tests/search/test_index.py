"""Tests for the similarity search subsystem."""

import numpy as np
import pytest

from repro.graphs import generate_graph, substitute_edges
from repro.models import build_model, train_scorer
from repro.graphs import load_dataset
from repro.search import SimilaritySearchIndex


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(0)
    return [generate_graph("GITHUB", rng) for _ in range(8)]


@pytest.fixture(scope="module")
def index(database):
    model = build_model("GMN-Li", input_dim=database[0].feature_dim)
    idx = SimilaritySearchIndex(model)
    idx.add_many(database)
    return idx


class TestDatabase:
    def test_add_returns_indices(self, database):
        model = build_model("GMN-Li", input_dim=database[0].feature_dim)
        idx = SimilaritySearchIndex(model)
        assert idx.add_many(database[:3]) == [0, 1, 2]
        assert len(idx) == 3
        assert idx.graph(1) is database[1]

    def test_query_empty_index_rejected(self, database):
        model = build_model("GMN-Li", input_dim=database[0].feature_dim)
        idx = SimilaritySearchIndex(model)
        with pytest.raises(ValueError):
            idx.query(database[0])


class TestQuery:
    def test_planted_clone_ranks_first(self, index, database):
        rng = np.random.default_rng(7)
        query = substitute_edges(database[3], 1, rng)
        results = index.query(query, top_k=3)
        assert results[0].index == 3

    def test_top_k_respected(self, index, database):
        results = index.query(database[0], top_k=2)
        assert len(results) == 2
        assert results[0].score >= results[1].score

    def test_bad_top_k(self, index, database):
        with pytest.raises(ValueError):
            index.query(database[0], top_k=0)

    def test_emf_model_gives_same_ranking(self, database):
        dim = database[0].feature_dim
        dense = SimilaritySearchIndex(build_model("GMN-Li", input_dim=dim))
        filtered = SimilaritySearchIndex(
            build_model("GMN-Li", input_dim=dim, use_emf=True)
        )
        dense.add_many(database)
        filtered.add_many(database)
        rng = np.random.default_rng(3)
        query = substitute_edges(database[5], 1, rng)
        a = [r.index for r in dense.query(query, top_k=4)]
        b = [r.index for r in filtered.query(query, top_k=4)]
        assert a == b

    def test_trained_scorer_used(self, database):
        dim = database[0].feature_dim
        model = build_model("GMN-Li", input_dim=dim)
        train_pairs = load_dataset("GITHUB", seed=2, num_pairs=16)
        head = train_scorer(model, train_pairs, epochs=100)
        idx = SimilaritySearchIndex(model, scorer=head)
        idx.add_many(database)
        results = idx.query(database[0], top_k=2)
        assert all(0.0 <= r.score <= 1.0 for r in results)


class TestPlanning:
    def test_latency_positive(self, index, database):
        latency = index.estimate_pair_latency(database[0], "CEGMA")
        assert latency > 0

    def test_cegma_supports_larger_database(self, index, database):
        query = database[0]
        cegma = index.max_database_size(query, 1.0, "CEGMA")
        gpu = index.max_database_size(query, 1.0, "PyG-GPU")
        assert cegma > gpu

    def test_plan_report_structure(self, index, database):
        report = index.plan(
            database[0], deadline_seconds=1.0, platforms=("CEGMA", "PyG-GPU")
        )
        assert set(report) == {"CEGMA", "PyG-GPU"}
        for row in report.values():
            assert row["search_seconds"] == pytest.approx(
                row["per_pair_seconds"] * len(index)
            )

    def test_unknown_platform(self, index, database):
        with pytest.raises(KeyError):
            index.estimate_pair_latency(database[0], "TPU")

    def test_bad_deadline(self, index, database):
        with pytest.raises(ValueError):
            index.max_database_size(database[0], 0.0)


class TestQueryMany:
    def test_results_in_query_order(self, index, database):
        rng = np.random.default_rng(5)
        queries = [
            substitute_edges(database[1], 1, rng),
            substitute_edges(database[6], 1, rng),
        ]
        results = index.query_many(queries, top_k=1)
        assert len(results) == 2
        assert results[0][0].index == 1
        assert results[1][0].index == 6


@pytest.fixture(scope="module")
def small_database():
    rng = np.random.default_rng(11)
    return [generate_graph("AIDS", rng) for _ in range(6)]


@pytest.fixture(scope="module")
def small_index(small_database):
    model = build_model("GMN-Li", input_dim=small_database[0].feature_dim)
    idx = SimilaritySearchIndex(model)
    idx.add_many(small_database)
    return idx


class TestTieBreaking:
    def test_clone_ties_rank_by_ascending_index(self, small_database):
        """Byte-identical candidates score identically; the tie must
        resolve by database index, deterministically."""
        model = build_model(
            "GMN-Li", input_dim=small_database[0].feature_dim
        )
        idx = SimilaritySearchIndex(model)
        # Database of clones: indices 0..3 all tie on every query.
        idx.add_many([small_database[0]] * 4 + [small_database[1]])
        results = idx.query(small_database[2], top_k=5)
        tied = [r.index for r in results if r.score == results[0].score]
        if len(tied) > 1:
            assert tied == sorted(tied)
        repeat = idx._query_flat(small_database[2], top_k=5)
        assert [(r.index, r.score) for r in results] == [
            (r.index, r.score) for r in repeat
        ]


class TestEdgeCases:
    def test_top_k_larger_than_database(self, small_index, small_database):
        results = small_index.query(small_database[0], top_k=50)
        assert len(results) == len(small_index)
        assert [r.index for r in results[:1]] == [0]

    def test_empty_graph_entries_are_scoreable(self, small_database):
        from repro.graphs import Graph

        dim = small_database[0].feature_dim
        model = build_model("GMN-Li", input_dim=dim)
        idx = SimilaritySearchIndex(model)
        empty = Graph(0, [], np.zeros((0, dim)))
        idx.add_many([small_database[0], empty, small_database[1]])
        results = idx.query(small_database[0], top_k=3)
        assert {r.index for r in results} == {0, 1, 2}
        assert results == idx._query_flat(small_database[0], top_k=3)

    def test_empty_graph_query(self, small_index, small_database):
        from repro.graphs import Graph

        dim = small_database[0].feature_dim
        empty = Graph(0, [], np.zeros((0, dim)))
        results = small_index.query(empty, top_k=2)
        assert len(results) == 2
        assert results == small_index._query_flat(empty, top_k=2)

    def test_query_many_empty_input(self, small_index):
        assert small_index.query_many([]) == []

    def test_save_load_empty_index(self, small_database, tmp_path):
        dim = small_database[0].feature_dim
        model = build_model("GMN-Li", input_dim=dim)
        path = tmp_path / "empty.npz"
        SimilaritySearchIndex(model).save(path)
        restored = SimilaritySearchIndex.load(path, model)
        assert len(restored) == 0
        with pytest.raises(ValueError, match="empty"):
            restored.query(small_database[0])


class TestSchemaVersioning:
    def test_artifact_carries_current_version(
        self, small_index, tmp_path
    ):
        from repro.search import INDEX_SCHEMA_VERSION

        path = tmp_path / "db.npz"
        small_index.save(path)
        with np.load(path) as data:
            assert int(data["schema_version"]) == INDEX_SCHEMA_VERSION

    def test_versionless_legacy_file_loads(
        self, small_index, small_database, tmp_path
    ):
        """Files written before the version stamp are exactly v1."""
        from repro.search.storage import database_arrays

        arrays = database_arrays(small_database)
        del arrays["schema_version"]
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **arrays)
        restored = SimilaritySearchIndex.load(path, small_index.model)
        assert len(restored) == len(small_database)
        assert restored.graph(3) == small_database[3]

    def test_unknown_version_raises_actionable_error(
        self, small_index, small_database, tmp_path
    ):
        from repro.search.storage import database_arrays

        arrays = database_arrays(small_database)
        arrays["schema_version"] = np.array(99)
        path = tmp_path / "future.npz"
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="schema version 99"):
            SimilaritySearchIndex.load(path, small_index.model)

    def test_corrupt_file_names_missing_array(
        self, small_index, small_database, tmp_path
    ):
        from repro.search.storage import database_arrays

        arrays = database_arrays(small_database[:2])
        del arrays["g1/features"]
        path = tmp_path / "corrupt.npz"
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="graph 1 of 2"):
            SimilaritySearchIndex.load(path, small_index.model)

    def test_non_index_file_rejected(self, small_index, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a search index"):
            SimilaritySearchIndex.load(path, small_index.model)


class TestBatchedEstimates:
    def test_estimate_tracks_batched_simulation(
        self, small_index, small_database
    ):
        """The extrapolated search estimate must stay within 2x of a
        full batched simulation of the same database — the estimator
        models the batched backend, not the old per-pair serial cost."""
        from repro.graphs import GraphPair
        from repro.platforms import REGISTRY
        from repro.trace.profiler import profile_batches

        query = small_database[0]
        estimate = small_index.estimate_search_seconds(
            query, "CEGMA", batch_size=4
        )
        pairs = [
            GraphPair(candidate, query)
            for candidate in small_database
        ]
        traces = profile_batches(
            small_index.model, pairs, batch_size=4
        )
        measured = REGISTRY.build("CEGMA").simulate_batches(traces)
        ratio = estimate / measured.latency_seconds
        assert 0.5 <= ratio <= 2.0, ratio

    def test_backend_forwarded_to_simulator(
        self, small_index, small_database
    ):
        batched = small_index.estimate_pair_latency(
            small_database[0], "CEGMA", backend="batched"
        )
        serial = small_index.estimate_pair_latency(
            small_database[0], "CEGMA", backend="serial"
        )
        # Both run; cycle counts agree between backends by construction.
        assert batched == pytest.approx(serial)

    def test_unknown_backend_rejected(self, small_index, small_database):
        with pytest.raises(ValueError, match="backend"):
            small_index.estimate_pair_latency(
                small_database[0], "CEGMA", backend="quantum"
            )

    def test_empty_index_estimate_rejected(self, small_database):
        model = build_model(
            "GMN-Li", input_dim=small_database[0].feature_dim
        )
        with pytest.raises(ValueError, match="empty"):
            SimilaritySearchIndex(model).estimate_pair_latency(
                small_database[0]
            )

    def test_plan_reports_throughput(self, small_index, small_database):
        report = small_index.plan(
            small_database[0], deadline_seconds=1.0, platforms=("CEGMA",)
        )
        row = report["CEGMA"]
        assert row["throughput_pairs_per_second"] == pytest.approx(
            1.0 / row["per_pair_seconds"]
        )


class TestGrowAfterQuery:
    def test_add_invalidates_cached_pipeline(self, small_database):
        """Regression: ``query`` cached its default pipeline, whose
        retriever/executor state could go stale when the database grew
        between queries; ``add`` must invalidate the cache so the next
        query sees every entry."""
        dim = small_database[0].feature_dim
        model = build_model("GMN-Li", input_dim=dim)
        idx = SimilaritySearchIndex(model)
        idx.add_many(small_database[:4])
        idx.query(small_database[0], top_k=2)
        new_id = idx.add(small_database[4])
        results = idx.query(small_database[4], top_k=2)
        assert results[0].index == new_id
        assert results == idx._query_flat(small_database[4], top_k=2)


class TestPlanningGuards:
    def test_zero_latency_capacity_is_unbounded(self, small_index, small_database):
        from unittest.mock import patch

        with patch.object(
            SimilaritySearchIndex,
            "estimate_pair_latency",
            return_value=0.0,
        ):
            capacity = small_index.max_database_size(small_database[0], 1.0)
            assert capacity == float("inf")
            report = small_index.plan(
                small_database[0], deadline_seconds=1.0, platforms=("CEGMA",)
            )
            assert report["CEGMA"]["max_database_size"] == float("inf")


class TestSketchPersistence:
    def test_v3_round_trip_preserves_signatures(
        self, small_index, small_database, tmp_path
    ):
        from repro.search.sketch import SketchConfig

        config = SketchConfig(num_perm=32, band_rows=4)
        store = small_index.sketch_store(config)
        expected = store.matrix().copy()
        path = tmp_path / "sketched.npz"
        small_index.save(path)
        with np.load(path) as data:
            assert data["sketch/signatures"].shape == expected.shape
        restored = SimilaritySearchIndex.load(path, small_index.model)
        restored_store = restored.sketch_store()
        assert restored_store is not None
        assert restored_store.config.compatible_with(config.to_params())
        np.testing.assert_array_equal(restored_store.matrix(), expected)

    def test_sketchless_save_loads_without_store(
        self, small_database, tmp_path
    ):
        dim = small_database[0].feature_dim
        idx = SimilaritySearchIndex(build_model("GMN-Li", input_dim=dim))
        idx.add_many(small_database)
        path = tmp_path / "plain.npz"
        idx.save(path)
        with np.load(path) as data:
            assert "sketch/signatures" not in data.files
        restored = SimilaritySearchIndex.load(path, idx.model)
        assert restored._sketch_store is None
        # Flat serving still works; sketch mode rebuilds from scratch.
        assert restored.query(small_database[0], top_k=2)[0].index == 0

    def test_loaded_sketch_serves_identically(
        self, small_index, small_database, tmp_path
    ):
        from repro.search.sketch import SketchConfig

        config = SketchConfig(min_candidates=3, recall_floor=0.9)
        small_index.sketch_store(config)
        path = tmp_path / "served.npz"
        small_index.save(path)
        restored = SimilaritySearchIndex.load(path, small_index.model)
        pipeline = restored.pipeline(
            retrieval="sketch", sketch_config=config, workers=1
        )
        query = small_database[2]
        (response,) = pipeline.serve([query], top_k=3)
        assert list(response.results) == restored._query_flat(query, top_k=3)


class TestPersistence:
    def test_save_load_round_trip(self, index, database, tmp_path):
        path = tmp_path / "db.npz"
        index.save(path)
        from repro.search import SimilaritySearchIndex

        restored = SimilaritySearchIndex.load(path, index.model)
        assert len(restored) == len(index)
        assert restored.graph(2) == index.graph(2)

    def test_loaded_index_ranks_identically(self, index, database, tmp_path):
        path = tmp_path / "db.npz"
        index.save(path)
        from repro.search import SimilaritySearchIndex

        restored = SimilaritySearchIndex.load(path, index.model)
        rng = np.random.default_rng(9)
        query = substitute_edges(database[4], 1, rng)
        original = [(r.index, r.score) for r in index.query(query, top_k=3)]
        reloaded = [(r.index, r.score) for r in restored.query(query, top_k=3)]
        assert original == reloaded
