"""Tests for the deterministic ranking contract (results layer)."""

import dataclasses

import numpy as np
import pytest

from repro.search.results import SearchResult, merge_topk, rank_scores


class TestSearchResult:
    def test_orders_by_descending_score(self):
        better = SearchResult(3, 0.9)
        worse = SearchResult(1, 0.5)
        assert better < worse
        assert worse > better

    def test_ties_break_by_ascending_index(self):
        first = SearchResult(2, 0.7)
        second = SearchResult(5, 0.7)
        assert first < second
        assert sorted([second, first]) == [first, second]

    def test_total_order_is_consistent(self):
        a = SearchResult(1, 0.5)
        b = SearchResult(1, 0.5)
        assert a <= b and a >= b and a == b

    def test_frozen(self):
        result = SearchResult(0, 1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.score = 2.0


class TestRankScores:
    def test_topk_descending(self):
        results = rank_scores([0.1, 0.9, 0.5], top_k=2)
        assert [(r.index, r.score) for r in results] == [(1, 0.9), (2, 0.5)]

    def test_ties_rank_by_ascending_index(self):
        results = rank_scores([0.5, 0.7, 0.5, 0.7], top_k=4)
        assert [r.index for r in results] == [1, 3, 0, 2]

    def test_custom_indices(self):
        results = rank_scores([0.2, 0.8], top_k=1, indices=[10, 20])
        assert results[0].index == 20

    def test_shorter_than_topk(self):
        assert len(rank_scores([1.0], top_k=5)) == 1

    def test_bad_topk(self):
        with pytest.raises(ValueError):
            rank_scores([1.0], top_k=0)

    def test_index_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_scores([1.0, 2.0], top_k=1, indices=[0])


class TestMergeTopk:
    def test_merge_equals_flat_sort(self):
        rng = np.random.default_rng(0)
        # Quantized scores force plenty of exact ties across shards.
        scores = np.round(rng.random(30), 1)
        flat = rank_scores(scores, top_k=7)
        bounds = [(0, 11), (11, 19), (19, 30)]
        partials = [
            rank_scores(scores[a:b], top_k=7, indices=np.arange(a, b))
            for a, b in bounds
        ]
        assert merge_topk(partials, top_k=7) == flat

    def test_merge_handles_short_shards(self):
        partials = [[SearchResult(0, 1.0)], [], [SearchResult(5, 2.0)]]
        merged = merge_topk(partials, top_k=5)
        assert [r.index for r in merged] == [5, 0]

    def test_bad_topk(self):
        with pytest.raises(ValueError):
            merge_topk([], top_k=0)
