"""Tests for the deterministic ranking contract (results layer)."""

import dataclasses

import numpy as np
import pytest

from repro.search.results import SearchResult, merge_topk, rank_scores


class TestSearchResult:
    def test_orders_by_descending_score(self):
        better = SearchResult(3, 0.9)
        worse = SearchResult(1, 0.5)
        assert better < worse
        assert worse > better

    def test_ties_break_by_ascending_index(self):
        first = SearchResult(2, 0.7)
        second = SearchResult(5, 0.7)
        assert first < second
        assert sorted([second, first]) == [first, second]

    def test_total_order_is_consistent(self):
        a = SearchResult(1, 0.5)
        b = SearchResult(1, 0.5)
        assert a <= b and a >= b and a == b

    def test_frozen(self):
        result = SearchResult(0, 1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.score = 2.0

    def test_nan_scores_stay_totally_ordered(self):
        """Regression: the raw ``(-score, index)`` key was incoherent
        under NaN (every comparison False), so heap merges ordered NaN
        candidates arbitrarily. NaN ranks after every real score, ties
        by ascending index."""
        real = SearchResult(9, -1e9)
        nan_low = SearchResult(2, float("nan"))
        nan_high = SearchResult(7, float("nan"))
        assert real < nan_low
        assert nan_low < nan_high
        assert not nan_high < nan_low
        assert sorted([nan_high, nan_low, real]) == [real, nan_low, nan_high]

    def test_nan_results_for_same_candidate_compare_equal(self):
        a = SearchResult(3, float("nan"))
        b = SearchResult(3, float("nan"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != SearchResult(4, float("nan"))


class TestRankScores:
    def test_topk_descending(self):
        results = rank_scores([0.1, 0.9, 0.5], top_k=2)
        assert [(r.index, r.score) for r in results] == [(1, 0.9), (2, 0.5)]

    def test_ties_rank_by_ascending_index(self):
        results = rank_scores([0.5, 0.7, 0.5, 0.7], top_k=4)
        assert [r.index for r in results] == [1, 3, 0, 2]

    def test_custom_indices(self):
        results = rank_scores([0.2, 0.8], top_k=1, indices=[10, 20])
        assert results[0].index == 20

    def test_shorter_than_topk(self):
        assert len(rank_scores([1.0], top_k=5)) == 1

    def test_bad_topk(self):
        with pytest.raises(ValueError):
            rank_scores([1.0], top_k=0)

    def test_index_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_scores([1.0, 2.0], top_k=1, indices=[0])


class TestMergeTopk:
    def test_merge_equals_flat_sort(self):
        rng = np.random.default_rng(0)
        # Quantized scores force plenty of exact ties across shards.
        scores = np.round(rng.random(30), 1)
        flat = rank_scores(scores, top_k=7)
        bounds = [(0, 11), (11, 19), (19, 30)]
        partials = [
            rank_scores(scores[a:b], top_k=7, indices=np.arange(a, b))
            for a, b in bounds
        ]
        assert merge_topk(partials, top_k=7) == flat

    def test_merge_equals_flat_sort_with_nan_scores(self):
        """A sharded merge of NaN-scored candidates must reproduce the
        flat lexsort's order (NaNs last, ascending index) — the
        divergence the ``search.sketch_vs_flat`` check caught."""
        scores = np.array([np.nan, 0.25, np.nan, np.nan, 0.75, np.nan])
        flat = rank_scores(scores, top_k=6)
        bounds = [(0, 2), (2, 4), (4, 6)]
        partials = [
            rank_scores(scores[a:b], top_k=6, indices=np.arange(a, b))
            for a, b in bounds
        ]
        merged = merge_topk(partials, top_k=6)
        assert merged == flat
        assert [r.index for r in merged] == [4, 1, 0, 2, 3, 5]

    def test_merge_handles_short_shards(self):
        partials = [[SearchResult(0, 1.0)], [], [SearchResult(5, 2.0)]]
        merged = merge_topk(partials, top_k=5)
        assert [r.index for r in merged] == [5, 0]

    def test_bad_topk(self):
        with pytest.raises(ValueError):
            merge_topk([], top_k=0)
