"""Every check must be proven able to fail.

For each registered check and each of its mutators — a deliberate
perturbation of exactly one side of the guarded pair (or one invariant
site) — the check must trip. A check that stays green under its own
mutations is decorative, not protective.
"""

import pytest

import repro.validate as validate

SMOKE_CASES = [
    (check.name, mutator)
    for check in validate.all_checks()
    for mutator in check.mutators
]


@pytest.mark.parametrize("name,mutator", SMOKE_CASES)
def test_mutation_trips_check(name, mutator):
    check = validate.get_check(name)
    with check.mutators[mutator]():
        (result,) = validate.run_checks([name], quick=True)
    assert not result.ok, (
        f"{name} stayed green under mutation {mutator!r} — the check "
        "cannot detect the divergence it guards against"
    )


@pytest.mark.parametrize(
    "name", [check.name for check in validate.all_checks()]
)
def test_mutation_smoke_api(name):
    outcomes = validate.mutation_smoke(name, quick=True)
    assert outcomes, f"{name} has no mutators"
    missed = [mutator for mutator, tripped in outcomes.items() if not tripped]
    assert missed == [], f"{name}: mutators not detected: {missed}"
