"""Tests for the validation-check registry machinery itself."""

from contextlib import contextmanager

import pytest

from repro.obs.metrics import metrics_enabled
from repro.validate import registry as registry_module
from repro.validate.registry import (
    CheckContext,
    CheckFailure,
    all_checks,
    get_check,
    mutation_smoke,
    register_check,
    run_checks,
)


@pytest.fixture()
def scratch_registry(monkeypatch):
    """An empty check registry, isolated from the built-in checks."""
    monkeypatch.setattr(registry_module, "_CHECKS", {})
    return registry_module._CHECKS


class TestRegistration:
    def test_registers_and_lists(self, scratch_registry):
        @register_check("t.alpha", kind="invariant")
        def alpha(context):
            return "ok"

        @register_check(
            "t.beta", kind="differential", pair=("left", "right")
        )
        def beta(context):
            return "ok"

        names = [check.name for check in all_checks()]
        assert names == ["t.alpha", "t.beta"]
        assert get_check("t.beta").pair == ("left", "right")

    def test_duplicate_name_rejected(self, scratch_registry):
        @register_check("t.dup", kind="invariant")
        def first(context):
            pass

        with pytest.raises(ValueError, match="already registered"):

            @register_check("t.dup", kind="invariant")
            def second(context):
                pass

    def test_unknown_kind_rejected(self, scratch_registry):
        with pytest.raises(ValueError, match="unknown check kind"):
            register_check("t.kind", kind="sideways")

    def test_differential_requires_pair(self, scratch_registry):
        with pytest.raises(ValueError, match="must name its pair"):
            register_check("t.nopair", kind="differential")

    def test_description_defaults_to_docstring(self, scratch_registry):
        @register_check("t.doc", kind="invariant")
        def documented(context):
            """First line wins.

            Not this one.
            """

        assert get_check("t.doc").description == "First line wins."

    def test_unknown_name_lists_known(self, scratch_registry):
        @register_check("t.known", kind="invariant")
        def known(context):
            pass

        with pytest.raises(KeyError, match="t.known"):
            get_check("t.unknown")


class TestRunChecks:
    def test_statuses_and_quick_flag(self, scratch_registry):
        seen = {}

        @register_check("t.pass", kind="invariant")
        def passing(context):
            seen["quick"] = context.quick
            return "detail text"

        @register_check("t.fail", kind="invariant")
        def failing(context):
            raise CheckFailure("left != right")

        @register_check("t.error", kind="invariant")
        def erroring(context):
            raise RuntimeError("infrastructure broke")

        results = {r.name: r for r in run_checks(quick=False)}
        assert seen == {"quick": False}
        assert results["t.pass"].status == "pass"
        assert results["t.pass"].ok
        assert results["t.pass"].detail == "detail text"
        assert results["t.fail"].status == "fail"
        assert "left != right" in results["t.fail"].detail
        assert results["t.error"].status == "error"
        assert "RuntimeError" in results["t.error"].detail

    def test_bare_assert_counts_as_failure(self, scratch_registry):
        @register_check("t.assert", kind="invariant")
        def asserting(context):
            assert 1 == 2, "one is not two"

        (result,) = run_checks(["t.assert"])
        assert result.status == "fail"
        assert "one is not two" in result.detail

    def test_unknown_name_raises_before_running(self, scratch_registry):
        ran = []

        @register_check("t.tracked", kind="invariant")
        def tracked(context):
            ran.append(True)

        with pytest.raises(KeyError):
            run_checks(["t.tracked", "t.missing"])
        assert ran == []

    def test_metrics_counters(self, scratch_registry):
        @register_check("t.good", kind="invariant")
        def good(context):
            pass

        @register_check("t.bad", kind="invariant")
        def bad(context):
            raise CheckFailure("nope")

        with metrics_enabled() as registry:
            run_checks()
        assert registry.counter("validate.checks.run") == 2
        assert registry.counter("validate.checks.passed") == 1
        assert registry.counter("validate.checks.failed") == 1
        assert (
            registry.counter(
                "validate.check.status", check="t.bad", status="fail"
            )
            == 1
        )

    def test_result_to_dict_round_trip_fields(self, scratch_registry):
        @register_check(
            "t.dict", kind="differential", pair=("a", "b")
        )
        def check(context):
            return "fine"

        (result,) = run_checks(["t.dict"])
        payload = result.to_dict()
        assert payload["name"] == "t.dict"
        assert payload["kind"] == "differential"
        assert payload["pair"] == ["a", "b"]
        assert payload["status"] == "pass"
        assert payload["duration_s"] >= 0


class TestMutationSmoke:
    @staticmethod
    def _toggle_mutator(flag):
        @contextmanager
        def mutate():
            flag["on"] = True
            try:
                yield
            finally:
                flag["on"] = False

        return mutate

    def test_mutator_trips_check(self, scratch_registry):
        flag = {"on": False}

        @register_check(
            "t.smoke",
            kind="invariant",
            mutators={"toggle": self._toggle_mutator(flag)},
        )
        def guarded(context):
            if flag["on"]:
                raise CheckFailure("mutation detected")

        assert mutation_smoke("t.smoke") == {"toggle": True}
        assert flag["on"] is False  # mutator unwound

    def test_mutator_that_does_not_trip_reported(self, scratch_registry):
        flag = {"on": False}

        @register_check(
            "t.blind",
            kind="invariant",
            mutators={"toggle": self._toggle_mutator(flag)},
        )
        def blind(context):
            pass  # never fails: the mutation goes unnoticed

        assert mutation_smoke("t.blind") == {"toggle": False}

    def test_broken_baseline_rejected(self, scratch_registry):
        @register_check("t.broken", kind="invariant")
        def broken(context):
            raise CheckFailure("already failing")

        with pytest.raises(CheckFailure, match="fails unmutated"):
            mutation_smoke("t.broken")

    def test_no_mutators_returns_empty(self, scratch_registry):
        @register_check("t.bare", kind="invariant")
        def bare(context):
            pass

        assert mutation_smoke("t.bare") == {}


class TestContext:
    def test_defaults_quick(self):
        assert CheckContext().quick is True
        assert CheckContext(quick=False).quick is False
