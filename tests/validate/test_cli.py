"""The ``repro validate`` subcommand: output, exit codes, JSON report."""

import json

from repro.__main__ import main


class TestList:
    def test_lists_checks(self, capsys):
        assert main(["validate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "emf.hash.scalar_vs_batch" in out
        assert "cgc.schedule_invariants" in out
        assert "differential" in out
        assert "invariant" in out


class TestRun:
    def test_single_check_passes(self, capsys):
        assert (
            main(
                ["validate", "--quick", "--only", "emf.hash.scalar_vs_batch"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "1/1 checks passed" in out

    def test_unknown_check_is_usage_error(self, capsys):
        assert main(["validate", "--only", "no.such.check"]) == 2
        assert "unknown check" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        report = tmp_path / "validate_report.json"
        assert (
            main(
                [
                    "validate",
                    "--quick",
                    "--only",
                    "emf.quantization_single_site",
                    "--only",
                    "cgc.degenerate_inputs",
                    "--json-out",
                    str(report),
                ]
            )
            == 0
        )
        payload = json.loads(report.read_text())
        assert payload["kind"] == "validate_report"
        assert payload["schema_version"] == 1
        assert payload["quick"] is True
        names = [row["name"] for row in payload["results"]]
        assert names == [
            "emf.quantization_single_site",
            "cgc.degenerate_inputs",
        ]
        assert all(row["status"] == "pass" for row in payload["results"])
        assert any(
            key.startswith("validate.checks.run")
            for key in payload["counters"]
        )

    def test_failing_check_exits_one(self, monkeypatch, capsys):
        from repro.validate.registry import CheckResult

        def fake_run_checks(names=None, quick=True):
            return [
                CheckResult(
                    "emf.quantization_single_site",
                    "invariant",
                    None,
                    "fail",
                    "forced divergence",
                    0.0,
                )
            ]

        monkeypatch.setattr("repro.validate.run_checks", fake_run_checks)
        assert (
            main(
                [
                    "validate",
                    "--quick",
                    "--only",
                    "emf.quantization_single_site",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "forced divergence" in out


class TestSmoke:
    def test_smoke_single_check(self, tmp_path, capsys):
        report = tmp_path / "smoke.json"
        assert (
            main(
                [
                    "validate",
                    "--quick",
                    "--smoke",
                    "--only",
                    "emf.quantization_single_site",
                    "--json-out",
                    str(report),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tripped" in out
        payload = json.loads(report.read_text())
        assert payload["kind"] == "validate_smoke_report"
        assert all(row["tripped"] for row in payload["mutations"])
