"""The built-in check roster: coverage and quick-tier green-ness.

The per-check cross-validation logic is exercised for real here (every
registered check runs its quick tier), and the roster itself is pinned:
all five redundant implementation pairs named in the reproduction notes
must stay guarded by a differential check, and the CGC/quantization
invariants by invariant checks.
"""

import pytest

import repro.validate as validate
from repro.validate.workloads import (
    adversarial_pairs,
    byte_matrices,
    feature_matrices,
    random_pairs,
)

CHECK_NAMES = [check.name for check in validate.all_checks()]


class TestRoster:
    def test_at_least_eight_checks(self):
        assert len(CHECK_NAMES) >= 8

    def test_every_redundant_pair_guarded(self):
        differential = {
            check.name: check.pair
            for check in validate.all_checks()
            if check.kind == "differential"
        }
        guarded = " ".join(
            f"{left} {right}" for left, right in differential.values()
        )
        assert "xxh32_batch" in guarded
        assert "_filter_vectorized" in guarded
        assert "method='cycle'" in guarded
        assert "DetailedSimulator" in guarded
        assert "parallel_simulate_workload" in guarded
        assert "TraceCache" in guarded

    def test_invariant_families_present(self):
        invariant = [
            check.name
            for check in validate.all_checks()
            if check.kind == "invariant"
        ]
        assert "cgc.schedule_invariants" in invariant
        assert "cgc.degenerate_inputs" in invariant
        assert "emf.quantization_single_site" in invariant

    def test_every_check_has_a_mutator(self):
        unproven = [
            check.name
            for check in validate.all_checks()
            if not check.mutators
        ]
        assert unproven == [], (
            "checks without mutators cannot be proven fail-capable: "
            f"{unproven}"
        )

    def test_every_check_described(self):
        for check in validate.all_checks():
            assert check.description, check.name


@pytest.mark.parametrize("name", CHECK_NAMES)
def test_quick_tier_passes(name):
    (result,) = validate.run_checks([name], quick=True)
    assert result.ok, f"{name}: {result.detail}"
    assert result.detail  # checks report what they covered


class TestWorkloads:
    def test_byte_matrices_cover_length_regimes(self):
        shapes = {matrix.shape for matrix in byte_matrices()}
        lengths = {length for _, length in shapes}
        rows = {count for count, _ in shapes}
        assert 0 in rows  # empty matrix
        assert 0 in lengths  # zero-length rows
        assert {1, 3, 5, 17, 19, 35} <= lengths  # word/stripe tails
        assert any(
            not matrix.flags["C_CONTIGUOUS"]
            for matrix in byte_matrices()
            if matrix.size
        )

    def test_byte_matrices_deterministic(self):
        first, second = byte_matrices(seed=7), byte_matrices(seed=7)
        assert all(
            (a == b).all() for a, b in zip(first, second) if a.size
        )

    def test_feature_matrices_plant_adversarial_values(self):
        import numpy as np

        matrices = feature_matrices()
        assert any(np.isnan(m).any() for m in matrices if m.size)
        assert any(
            np.signbit(m[m == 0.0]).any() for m in matrices if m.size
        )
        assert any(m.shape[0] == 0 for m in matrices)
        assert any(m.shape[1] == 0 for m in matrices)

    def test_adversarial_pairs_cover_degenerate_shapes(self):
        cases = dict(adversarial_pairs())
        assert cases["empty_query"].query.num_nodes == 0
        assert cases["empty_target"].target.num_nodes == 0
        assert cases["both_empty"].target.num_nodes == 0
        small = cases["smaller_than_half_window"]
        assert small.target.num_nodes < small.query.num_nodes
        assert len(cases) >= 8

    def test_random_pairs_seeded(self):
        first, second = random_pairs(3), random_pairs(3)
        assert [p.target.num_nodes for p in first] == [
            p.target.num_nodes for p in second
        ]
