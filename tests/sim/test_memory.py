"""Tests for the DRAM timing model."""

import pytest

from repro.sim import DRAMModel


class TestTransactions:
    def test_rounding_up(self):
        model = DRAMModel(transaction_bytes=32)
        assert model.transactions(1) == 1
        assert model.transactions(32) == 1
        assert model.transactions(33) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().transactions(-1)


class TestAccessCycles:
    def test_zero_bytes_free(self):
        assert DRAMModel().access_cycles(0) == 0.0

    def test_sequential_cheaper_than_random(self):
        model = DRAMModel()
        size = 64 * 1024
        assert model.access_cycles(size, sequential=True) < model.access_cycles(
            size, sequential=False
        )

    def test_small_request_padding(self):
        # A 1-byte random read still moves a full transaction.
        model = DRAMModel(
            bandwidth_bytes_per_cycle=32, row_activation_cycles=0.0
        )
        assert model.access_cycles(1, sequential=False) == pytest.approx(1.0)

    def test_effective_bandwidth_below_peak(self):
        model = DRAMModel()
        eff = model.effective_bandwidth(1 << 20, sequential=True)
        assert 0 < eff < model.bandwidth_bytes_per_cycle

    def test_row_activation_occupancy(self):
        base = DRAMModel(row_activation_cycles=0.0)
        costly = DRAMModel(row_activation_cycles=100.0)
        size = 8 * 1024
        assert costly.access_cycles(size) > base.access_cycles(size)


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DRAMModel(bandwidth_bytes_per_cycle=0)
        with pytest.raises(ValueError):
            DRAMModel(transaction_bytes=64, row_bytes=32)
        with pytest.raises(ValueError):
            DRAMModel(random_row_miss_rate=1.5)
