"""Integration tests for the cycle-level accelerator simulator."""

import numpy as np
import pytest

from repro.baselines import pyg_cpu_model, pyg_gpu_model
from repro.graphs import load_dataset
from repro.models import build_model
from repro.sim import (
    AcceleratorSimulator,
    awbgcn_config,
    cegma_cgc_only_config,
    cegma_config,
    cegma_emf_only_config,
    hygcn_config,
)
from repro.trace import profile_batches


@pytest.fixture(scope="module")
def traces():
    """Small GITHUB workloads for each model (module-scoped: tracing and
    simulating are the expensive parts of this test file)."""
    pairs = load_dataset("GITHUB", seed=0, num_pairs=4)
    input_dim = pairs[0].target.feature_dim
    return {
        name: profile_batches(build_model(name, input_dim=input_dim), pairs, 4)
        for name in ("GMN-Li", "GraphSim", "SimGNN")
    }


@pytest.fixture(scope="module")
def results(traces):
    configs = {
        "CEGMA": cegma_config(),
        "CEGMA-EMF": cegma_emf_only_config(),
        "CEGMA-CGC": cegma_cgc_only_config(),
        "HyGCN": hygcn_config(),
        "AWB-GCN": awbgcn_config(),
    }
    return {
        model_name: {
            platform: AcceleratorSimulator(cfg).simulate_batches(batches)
            for platform, cfg in configs.items()
        }
        for model_name, batches in traces.items()
    }


class TestBasicAccounting:
    def test_positive_outputs(self, results):
        for per_platform in results.values():
            for result in per_platform.values():
                assert result.cycles > 0
                assert result.dram_bytes > 0
                assert result.macs > 0
                assert result.energy_joules > 0
                assert result.num_pairs == 4

    def test_latency_consistency(self, results):
        result = results["GMN-Li"]["CEGMA"]
        assert result.latency_seconds == pytest.approx(result.cycles / 1e9)
        assert result.latency_per_pair == pytest.approx(
            result.latency_seconds / 4
        )
        assert result.throughput_pairs_per_second == pytest.approx(
            4 / result.latency_seconds
        )

    def test_merge_accumulates(self, traces):
        sim = AcceleratorSimulator(cegma_config())
        single = sim.simulate_batch(traces["SimGNN"][0])
        double = sim.simulate_batch(traces["SimGNN"][0])
        double.merge(sim.simulate_batch(traces["SimGNN"][0]))
        assert double.num_pairs == 2 * single.num_pairs
        assert double.cycles == pytest.approx(2 * single.cycles)

    def test_merge_rejects_platform_mismatch(self, traces):
        a = AcceleratorSimulator(cegma_config()).simulate_batch(traces["SimGNN"][0])
        b = AcceleratorSimulator(awbgcn_config()).simulate_batch(traces["SimGNN"][0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_batch_list_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorSimulator(cegma_config()).simulate_batches([])


class TestPaperShape:
    """The qualitative results of Section V must hold on every workload."""

    @pytest.mark.parametrize("model_name", ["GMN-Li", "GraphSim", "SimGNN"])
    def test_cegma_beats_baseline_accelerators(self, results, model_name):
        per_platform = results[model_name]
        assert (
            per_platform["CEGMA"].latency_seconds
            < per_platform["AWB-GCN"].latency_seconds
        )
        assert (
            per_platform["CEGMA"].latency_seconds
            < per_platform["HyGCN"].latency_seconds
        )

    @pytest.mark.parametrize("model_name", ["GMN-Li", "GraphSim", "SimGNN"])
    def test_ablations_between_baseline_and_full(self, results, model_name):
        per_platform = results[model_name]
        full = per_platform["CEGMA"].latency_seconds
        awb = per_platform["AWB-GCN"].latency_seconds
        for ablation in ("CEGMA-EMF", "CEGMA-CGC"):
            assert full <= per_platform[ablation].latency_seconds * 1.05
            assert per_platform[ablation].latency_seconds < awb

    def test_gmnli_gains_most(self, results):
        """GMN-Li matches in every layer, so CEGMA's advantage is largest
        there and smallest for model-wise SimGNN (Section V-B)."""

        def gain(model_name):
            per_platform = results[model_name]
            return (
                per_platform["AWB-GCN"].latency_seconds
                / per_platform["CEGMA"].latency_seconds
            )

        assert gain("GMN-Li") > gain("SimGNN")

    @pytest.mark.parametrize("model_name", ["GMN-Li", "GraphSim", "SimGNN"])
    def test_cegma_reduces_dram(self, results, model_name):
        per_platform = results[model_name]
        assert per_platform["CEGMA"].dram_bytes < per_platform["HyGCN"].dram_bytes
        assert per_platform["CEGMA"].dram_bytes < per_platform["AWB-GCN"].dram_bytes

    def test_gmnli_dram_reduction_is_largest(self, results):
        """Type-(b) on-chip reuse removes GMN-Li's similarity traffic."""

        def reduction(model_name):
            per_platform = results[model_name]
            return 1 - (
                per_platform["CEGMA"].dram_bytes
                / per_platform["HyGCN"].dram_bytes
            )

        assert reduction("GMN-Li") > reduction("SimGNN")

    @pytest.mark.parametrize("model_name", ["GMN-Li", "GraphSim", "SimGNN"])
    def test_cegma_saves_energy(self, results, model_name):
        per_platform = results[model_name]
        assert (
            per_platform["CEGMA"].energy_joules
            < per_platform["HyGCN"].energy_joules
        )


class TestSoftwareBaselines:
    def test_gpu_beats_cpu(self, traces):
        gpu = pyg_gpu_model().simulate_batches(traces["GMN-Li"])
        cpu = pyg_cpu_model().simulate_batches(traces["GMN-Li"])
        assert gpu.latency_seconds < cpu.latency_seconds

    def test_cegma_beats_gpu_by_orders_of_magnitude(self, traces):
        gpu = pyg_gpu_model().simulate_batches(traces["GMN-Li"])
        cegma = AcceleratorSimulator(cegma_config()).simulate_batches(
            traces["GMN-Li"]
        )
        assert gpu.latency_seconds / cegma.latency_seconds > 50

    def test_pair_latency_monotone_in_flops(self):
        model = pyg_gpu_model()
        assert model.pair_latency_seconds(2e9, 5) > model.pair_latency_seconds(
            1e9, 5
        )

    def test_dispatch_overhead_floor(self):
        model = pyg_gpu_model()
        floor = 5 * model.ops_per_layer * model.op_overhead_seconds
        assert model.pair_latency_seconds(0, 5) == pytest.approx(floor)

    def test_validation(self):
        from repro.baselines import SoftwarePlatformModel

        with pytest.raises(ValueError):
            SoftwarePlatformModel("x", 0.0, 1e-6)
        with pytest.raises(ValueError):
            SoftwarePlatformModel("x", 1e9, -1.0)
        with pytest.raises(ValueError):
            pyg_cpu_model().simulate_batches([])


class TestLayerBreakdown:
    def test_one_entry_per_layer(self, traces):
        result = AcceleratorSimulator(cegma_config()).simulate_batches(
            traces["GMN-Li"]
        )
        assert len(result.layer_stats) == 5
        for stats in result.layer_stats:
            assert stats["cycles"] > 0
            assert stats["dram_bytes"] > 0
            assert stats["macs"] > 0

    def test_layers_sum_to_totals(self, traces):
        result = AcceleratorSimulator(awbgcn_config()).simulate_batches(
            traces["GraphSim"]
        )
        layer_dram = sum(s["dram_bytes"] for s in result.layer_stats)
        assert layer_dram == pytest.approx(result.dram_bytes)
        layer_cycles = sum(s["cycles"] for s in result.layer_stats)
        # Totals also include the readout stage, so layers sum to less.
        assert layer_cycles <= result.cycles

    def test_merge_sums_layerwise(self, traces):
        sim = AcceleratorSimulator(cegma_config())
        single = sim.simulate_batch(traces["SimGNN"][0])
        merged = sim.simulate_batch(traces["SimGNN"][0])
        merged.merge(sim.simulate_batch(traces["SimGNN"][0]))
        assert len(merged.layer_stats) == len(single.layer_stats)
        assert merged.layer_stats[0]["macs"] == pytest.approx(
            2 * single.layer_stats[0]["macs"]
        )

    def test_simgnn_matching_layer_dominates_dram(self, traces):
        """SimGNN only matches in layer 3, whose similarity writeback
        makes it the DRAM-heaviest layer."""
        result = AcceleratorSimulator(awbgcn_config()).simulate_batches(
            traces["SimGNN"]
        )
        drams = [s["dram_bytes"] for s in result.layer_stats]
        assert drams[2] == max(drams)


class TestEnergyComponents:
    def test_components_sum_to_total(self, traces):
        result = AcceleratorSimulator(cegma_config()).simulate_batches(
            traces["GraphSim"]
        )
        assert sum(result.energy_components.values()) == pytest.approx(
            result.energy_joules
        )
        assert set(result.energy_components) == {
            "dram",
            "sram",
            "compute",
            "static",
        }

    def test_merge_sums_components(self, traces):
        sim = AcceleratorSimulator(cegma_config())
        single = sim.simulate_batch(traces["SimGNN"][0])
        merged = sim.simulate_batch(traces["SimGNN"][0])
        merged.merge(sim.simulate_batch(traces["SimGNN"][0]))
        assert merged.energy_components["dram"] == pytest.approx(
            2 * single.energy_components["dram"]
        )
