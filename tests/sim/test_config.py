"""Tests for hardware configurations (Table III)."""

import pytest

from repro.sim import (
    BYTES_PER_VALUE,
    HardwareConfig,
    awbgcn_config,
    cegma_cgc_only_config,
    cegma_config,
    cegma_emf_only_config,
    hygcn_config,
)


class TestTable3Configurations:
    def test_cegma_mac_array(self):
        config = cegma_config()
        assert config.mac_units == 128 * 32
        assert config.emf_enabled
        assert config.cgc_enabled
        assert config.input_buffer_bytes == 128 * 1024
        assert config.frequency_hz == 1e9
        assert config.matching_utilization == 1.0

    def test_hygcn_heterogeneous(self):
        config = hygcn_config()
        assert not config.shared_compute
        assert config.aggregation_lanes == 32 * 16
        assert config.mac_units == 32 * 128
        assert not config.emf_enabled
        assert not config.cgc_enabled

    def test_awbgcn_homogeneous(self):
        config = awbgcn_config()
        assert config.shared_compute
        assert config.mac_units == 4096
        assert config.aggregation_lanes == 4096

    def test_baselines_have_reduced_matching_utilization(self):
        assert awbgcn_config().matching_utilization < 0.5
        assert hygcn_config().matching_utilization < 0.5
        assert (
            hygcn_config().matching_utilization
            < awbgcn_config().matching_utilization
        )

    def test_baselines_are_batch_interleaved(self):
        assert hygcn_config().batch_interleaved
        assert awbgcn_config().batch_interleaved
        assert not cegma_config().batch_interleaved


class TestAblationConfigurations:
    def test_emf_only(self):
        config = cegma_emf_only_config()
        assert config.emf_enabled
        assert not config.cgc_enabled
        assert not config.overlaps_memory

    def test_cgc_only(self):
        config = cegma_cgc_only_config()
        assert not config.emf_enabled
        assert config.cgc_enabled
        assert config.overlaps_memory

    def test_full_cegma_overlaps(self):
        assert cegma_config().overlaps_memory


class TestValidation:
    def test_positive_compute_required(self):
        with pytest.raises(ValueError):
            HardwareConfig("x", 0, 1, True, 1024, 256.0)

    def test_buffer_size_validated(self):
        with pytest.raises(ValueError):
            HardwareConfig("x", 1, 1, True, 0, 256.0)

    def test_utilization_range(self):
        with pytest.raises(ValueError):
            HardwareConfig("x", 1, 1, True, 1024, 256.0, matching_utilization=0.0)
        with pytest.raises(ValueError):
            HardwareConfig("x", 1, 1, True, 1024, 256.0, matching_utilization=1.5)

    def test_buffer_capacity_nodes(self):
        config = cegma_config()
        assert config.buffer_capacity_nodes(64) == 128 * 1024 // (64 * BYTES_PER_VALUE)
        assert config.buffer_capacity_nodes(0) >= 2

    def test_overlap_override(self):
        config = HardwareConfig(
            "x", 8, 8, True, 1024, 256.0, cgc_enabled=False, overlaps_memory=True
        )
        assert config.overlaps_memory


class TestSerialization:
    @pytest.mark.parametrize(
        "factory",
        [
            cegma_config,
            cegma_emf_only_config,
            cegma_cgc_only_config,
            hygcn_config,
            awbgcn_config,
        ],
    )
    def test_round_trip(self, factory):
        original = factory()
        restored = HardwareConfig.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.name == original.name
        assert restored.emf_enabled == original.emf_enabled
        assert restored.overlaps_memory == original.overlaps_memory

    def test_json_round_trip(self):
        import json

        payload = json.loads(json.dumps(cegma_config().to_dict()))
        restored = HardwareConfig.from_dict(payload)
        assert restored.mac_units == 4096

    def test_round_trip_simulates_identically(self):
        from repro.experiments.common import workload_traces
        from repro.sim import AcceleratorSimulator

        traces = list(workload_traces("SimGNN", "AIDS", 2, 2, 0))
        original = AcceleratorSimulator(cegma_config()).simulate_batches(traces)
        restored = AcceleratorSimulator(
            HardwareConfig.from_dict(cegma_config().to_dict())
        ).simulate_batches(traces)
        assert restored.cycles == original.cycles
        assert restored.dram_bytes == original.dram_bytes
