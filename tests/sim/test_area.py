"""Tests for the Table III area model."""

import pytest

from repro.sim import AreaReport, cegma_area_report
from repro.sim.area import PAPER_TOTAL_MM2


class TestCegmaAreaReport:
    def test_total_matches_paper(self):
        report = cegma_area_report()
        assert report.total_mm2 == pytest.approx(PAPER_TOTAL_MM2, rel=0.05)

    @pytest.mark.parametrize(
        "component,kind,paper_pct",
        [
            ("EMF", "logic", 0.18),
            ("EMF", "buffer", 6.66),
            ("CGC", "logic", 0.01),
            ("CGC", "buffer", 11.79),
            ("PE", "logic", 53.58),
            ("PE", "buffer", 27.78),
        ],
    )
    def test_shares_match_table3(self, component, kind, paper_pct):
        report = cegma_area_report()
        ours = 100 * report.share(component, kind)
        assert ours == pytest.approx(paper_pct, rel=0.15, abs=0.02)

    def test_table_percentages_sum_to_100(self):
        report = cegma_area_report()
        total = sum(
            row["logic_pct"] + row["buffer_pct"]
            for row in report.table().values()
        )
        assert total == pytest.approx(100.0)

    def test_pe_dominates(self):
        report = cegma_area_report()
        assert report.share("PE", "logic") > 0.5


class TestAreaReportContainer:
    def test_custom_components(self):
        report = AreaReport({"X": {"logic": 1.0, "buffer": 3.0}})
        assert report.total_mm2 == 4.0
        assert report.share("X", "buffer") == 0.75
