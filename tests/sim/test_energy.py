"""Tests for the energy model."""

import pytest

from repro.sim import EnergyModel


class TestEnergyModel:
    def test_zero_events_zero_energy(self):
        model = EnergyModel(static_watts=0.0)
        assert model.energy_joules(0, 0, 0) == 0.0

    def test_dram_dominates_per_byte(self):
        model = EnergyModel()
        assert model.energy_joules(1000, 0, 0) > model.energy_joules(0, 1000, 0)

    def test_static_term_scales_with_runtime(self):
        model = EnergyModel(static_watts=2.0)
        fast = model.energy_joules(0, 0, 0, runtime_seconds=1.0)
        slow = model.energy_joules(0, 0, 0, runtime_seconds=3.0)
        assert slow == pytest.approx(3 * fast)

    def test_expected_magnitude(self):
        # 1 MB of DRAM traffic at 7 pJ/byte = 7 microjoules.
        model = EnergyModel(static_watts=0.0)
        assert model.energy_joules(1e6, 0, 0) == pytest.approx(7e-6)

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_pj_per_byte=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(static_watts=-0.5)


class TestEnergyBreakdown:
    def test_components_sum_to_total(self):
        model = EnergyModel()
        breakdown = model.energy_breakdown(1e6, 2e6, 3e6, 0.01)
        assert sum(breakdown.values()) == pytest.approx(
            model.energy_joules(1e6, 2e6, 3e6, 0.01)
        )

    def test_component_keys(self):
        breakdown = EnergyModel().energy_breakdown(1, 1, 1, 1)
        assert set(breakdown) == {"dram", "sram", "compute", "static"}

    def test_static_dominates_long_idle_runs(self):
        model = EnergyModel()
        breakdown = model.energy_breakdown(0, 0, 0, 1.0)
        assert breakdown["static"] == pytest.approx(model.static_watts)
