"""Tests for the tile-level MAC-array model."""

import pytest

from repro.sim import MACArray


class TestGemmCycles:
    def test_single_tile(self):
        array = MACArray(128, 32)
        assert array.gemm_cycles(128, 64, 32) == 64

    def test_tiling(self):
        array = MACArray(128, 32)
        assert array.gemm_cycles(256, 64, 64) == 4 * 64

    def test_small_operand_same_as_full_tile(self):
        """A 16-row GEMM occupies the whole tile time: the array-shape
        underutilization the coarse model misses."""
        array = MACArray(128, 32)
        assert array.gemm_cycles(16, 64, 32) == array.gemm_cycles(128, 64, 32)

    def test_zero_dims_free(self):
        assert MACArray().gemm_cycles(0, 64, 32) == 0

    def test_fill_cycles_added_per_tile(self):
        plain = MACArray(128, 32, fill_cycles=0)
        filled = MACArray(128, 32, fill_cycles=10)
        assert filled.gemm_cycles(256, 64, 64) == plain.gemm_cycles(256, 64, 64) + 4 * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            MACArray(0, 32)
        with pytest.raises(ValueError):
            MACArray().gemm_cycles(-1, 2, 2)


class TestUtilization:
    def test_perfect_on_aligned_shapes(self):
        array = MACArray(128, 32)
        assert array.utilization(128, 64, 32) == pytest.approx(1.0)

    def test_poor_on_small_graphs(self):
        array = MACArray(128, 32)
        assert array.utilization(16, 64, 16) < 0.1

    def test_report_keys(self):
        report = MACArray().report(64, 64, 64)
        assert set(report) == {"cycles", "ideal_cycles", "utilization"}
        assert 0 < report["utilization"] <= 1.0


class TestDetailedIntegration:
    def test_tile_model_slower_on_small_graphs(self):
        from repro.experiments.common import workload_traces
        from repro.sim import DetailedSimulator, cegma_config

        traces = list(workload_traces("GraphSim", "AIDS", 2, 2, 0))
        flat = DetailedSimulator(cegma_config()).simulate_batches(traces)
        tiled = DetailedSimulator(
            cegma_config(), tile_model=True
        ).simulate_batches(traces)
        # Tiny AIDS windows strand most of the 128x32 array.
        assert tiled.latency_seconds > flat.latency_seconds

    def test_tile_model_close_on_large_graphs(self):
        from repro.experiments.common import workload_traces
        from repro.sim import DetailedSimulator, cegma_config

        traces = list(workload_traces("GraphSim", "RD-B", 2, 2, 0))
        flat = DetailedSimulator(cegma_config()).simulate_batches(traces)
        tiled = DetailedSimulator(
            cegma_config(), tile_model=True
        ).simulate_batches(traces)
        ratio = tiled.latency_seconds / flat.latency_seconds
        assert 0.8 < ratio < 2.0
