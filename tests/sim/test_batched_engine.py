"""Tests for the batched simulation backend and its vectorized kernels.

The heavyweight bit-identity guarantee (batched == serial, results and
metric streams) lives in the ``sim.batched_vs_serial`` differential
check; these tests cover the surrounding contracts — backend selection,
batching invariances, and the batch kernels' elementwise equivalence.
"""

import json

import numpy as np
import pytest

from repro.platforms import REGISTRY
from repro.sim.engine import SIM_BACKENDS, AcceleratorSimulator
from repro.sim.memory import DRAMModel
from repro.sim.pe import MACArray
from repro.validate.workloads import small_traces


def _result_dict(simulator, traces):
    return simulator.simulate_batches(list(traces)).to_dict()


def _close_dicts(left, right, rtol=1e-9):
    """Structural equality with a float tolerance (association order)."""
    assert set(left) == set(right)
    for key in left:
        a, b = left[key], right[key]
        if isinstance(a, dict):
            _close_dicts(a, b, rtol)
        elif isinstance(a, list):
            assert len(a) == len(b)
            for item_a, item_b in zip(a, b):
                if isinstance(item_a, dict):
                    _close_dicts(item_a, item_b, rtol)
                else:
                    assert item_a == item_b, key
        elif isinstance(a, float):
            assert np.isclose(a, b, rtol=rtol, atol=0.0), (key, a, b)
        else:
            assert a == b, key


class TestBackendSelection:
    def test_backends_roster(self):
        assert SIM_BACKENDS == ("batched", "serial")

    def test_default_is_batched(self):
        assert REGISTRY.build("CEGMA").backend == "batched"

    def test_unknown_backend_rejected(self):
        config = REGISTRY.build("CEGMA").config
        with pytest.raises(ValueError, match="unknown backend"):
            AcceleratorSimulator(config, backend="vectorised")

    def test_serial_backend_still_selectable(self):
        # Deprecation shim: the per-pair reference loop stays available
        # for one release cycle via backend="serial".
        traces = small_traces(num_pairs=2, batch_size=2)
        config = REGISTRY.build("CEGMA").config
        serial = AcceleratorSimulator(config, backend="serial")
        batched = AcceleratorSimulator(config, backend="batched")
        left = _result_dict(serial, traces)
        right = _result_dict(batched, traces)
        assert json.dumps(left, sort_keys=True) == json.dumps(
            right, sort_keys=True
        )

    def test_api_backend_threading_rejects_unknown(self):
        from repro.core.api import simulate_traces

        traces = small_traces(num_pairs=2, batch_size=2)
        with pytest.raises(ValueError, match="unknown simulation backend"):
            simulate_traces(traces, ("CEGMA",), backend="nope")

    def test_api_backend_skips_software_platforms(self):
        from repro.core.api import simulate_traces

        traces = small_traces(num_pairs=2, batch_size=2)
        # PyG-CPU is an analytic software model without a backend; the
        # explicit backend request must not break it.
        results = simulate_traces(
            traces, ("PyG-CPU", "CEGMA"), backend="serial"
        )
        assert set(results) == {"PyG-CPU", "CEGMA"}


class TestBatchingInvariances:
    """Batched results do not depend on how pairs are grouped or ordered.

    Totals are reductions over per-pair values; reordering changes float
    association only, so floats are held to an ulp-level tolerance and
    everything integral must match exactly.
    """

    def test_invariant_to_batch_split_points(self):
        simulator = REGISTRY.build("CEGMA")
        coarse = small_traces(num_pairs=4, batch_size=4)
        fine = small_traces(num_pairs=4, batch_size=1)
        left = _result_dict(simulator, coarse)
        right = _result_dict(simulator, fine)
        left.pop("layer_stats")
        right.pop("layer_stats")
        _close_dicts(left, right)

    def test_invariant_to_pair_order(self):
        from repro.trace.profiler import BatchTrace

        simulator = REGISTRY.build("CEGMA")
        traces = small_traces(num_pairs=4, batch_size=4)
        (batch,) = traces
        reversed_traces = [
            BatchTrace(batch.batch, list(reversed(batch.pair_traces)))
        ]
        left = _result_dict(simulator, traces)
        right = _result_dict(simulator, reversed_traces)
        _close_dicts(left, right)


class TestGemmCyclesBatch:
    def test_elementwise_identical_to_scalar(self):
        array = MACArray(rows=8, cols=4, fill_cycles=3)
        shapes = [
            (0, 5, 5),
            (5, 0, 5),
            (5, 5, 0),
            (1, 1, 1),
            (8, 16, 4),
            (9, 16, 5),
            (1000, 3, 1000),
        ]
        n, k, m = (np.array(dim) for dim in zip(*shapes))
        batch = array.gemm_cycles_batch(n, k, m)
        assert batch.dtype == np.int64
        for index, (nn, kk, mm) in enumerate(shapes):
            assert int(batch[index]) == array.gemm_cycles(nn, kk, mm)

    def test_broadcasting(self):
        array = MACArray(rows=4, cols=4)
        batch = array.gemm_cycles_batch(np.array([4, 8, 12]), 7, 4)
        assert batch.tolist() == [
            array.gemm_cycles(size, 7, 4) for size in (4, 8, 12)
        ]

    def test_negative_rejected(self):
        array = MACArray()
        with pytest.raises(ValueError, match="non-negative"):
            array.gemm_cycles_batch(np.array([1, -1]), 2, 2)

    def test_metric_free(self):
        from repro.obs.metrics import metrics_enabled

        array = MACArray()
        with metrics_enabled() as registry:
            array.gemm_cycles_batch(np.array([8, 16]), 4, 4)
        assert registry.counter("pe.gemm.calls") == 0


class TestAccessCyclesBatch:
    @pytest.mark.parametrize("sequential", [True, False])
    def test_elementwise_identical_to_scalar(self, sequential):
        dram = DRAMModel()
        sizes = np.array([0.0, 1.0, 63.0, 64.0, 65.0, 4096.0, 1e7])
        batch = dram.access_cycles_batch(sizes, sequential=sequential)
        for index, size in enumerate(sizes.tolist()):
            assert batch[index] == dram.access_cycles(
                size, sequential=sequential
            )

    def test_negative_rejected(self):
        dram = DRAMModel()
        with pytest.raises(ValueError, match="negative"):
            dram.access_cycles_batch(np.array([8.0, -1.0]))

    def test_metric_free(self):
        from repro.obs.metrics import metrics_enabled

        dram = DRAMModel()
        with metrics_enabled() as registry:
            dram.access_cycles_batch(np.array([64.0, 4096.0]))
        assert registry.counter("dram.requests", pattern="sequential") == 0


class TestBatchObservability:
    def test_pairs_per_call_histogram(self):
        from repro.obs.metrics import metrics_enabled

        traces = small_traces(num_pairs=4, batch_size=2)
        simulator = REGISTRY.build("CEGMA")
        with metrics_enabled() as registry:
            simulator.simulate_batches(list(traces))
        histogram = registry.histogram("sim.batch.pairs_per_call")
        assert histogram is not None
        assert histogram.count == len(traces)
        assert histogram.total == sum(
            len(batch.pair_traces) for batch in traces
        )
