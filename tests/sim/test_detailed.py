"""Validation of the detailed per-step simulator against the analytical
layer model."""

import pytest

from repro.experiments.common import workload_traces
from repro.sim import (
    AcceleratorSimulator,
    DetailedSimulator,
    awbgcn_config,
    cegma_config,
    hygcn_config,
)


@pytest.fixture(scope="module")
def traces():
    return {
        ds: list(workload_traces("GMN-Li", ds, 4, 4, 0))
        for ds in ("AIDS", "RD-B")
    }


@pytest.fixture(scope="module")
def results(traces):
    out = {}
    for ds, batches in traces.items():
        out[ds] = {}
        for factory in (cegma_config, awbgcn_config, hygcn_config):
            name = factory().name
            out[ds][name] = {
                "analytical": AcceleratorSimulator(factory()).simulate_batches(
                    batches
                ),
                "detailed": DetailedSimulator(factory()).simulate_batches(
                    batches
                ),
            }
    return out


class TestAgreement:
    def test_latency_within_small_factor(self, results):
        """Per-step pipelining and the layer-level model must agree
        within a small factor. The detailed baselines land *below* the
        analytical ones on memory-heavy workloads because step-level
        double buffering hides loads the staged model serializes."""
        for ds, per_platform in results.items():
            for platform, pair in per_platform.items():
                ratio = (
                    pair["detailed"].latency_seconds
                    / pair["analytical"].latency_seconds
                )
                assert 0.3 < ratio < 3.0, (ds, platform, ratio)

    def test_macs_identical(self, results):
        for per_platform in results.values():
            for pair in per_platform.values():
                assert pair["detailed"].macs == pytest.approx(
                    pair["analytical"].macs, rel=1e-9
                )

    def test_dram_traffic_identical(self, results):
        for per_platform in results.values():
            for pair in per_platform.values():
                assert pair["detailed"].dram_bytes == pytest.approx(
                    pair["analytical"].dram_bytes, rel=1e-9
                )


class TestOrderingPreserved:
    def test_cegma_still_fastest(self, results):
        for ds, per_platform in results.items():
            cegma = per_platform["CEGMA"]["detailed"].latency_seconds
            assert cegma < per_platform["AWB-GCN"]["detailed"].latency_seconds
            assert cegma < per_platform["HyGCN"]["detailed"].latency_seconds

    def test_speedup_grows_with_graph_size(self, results):
        def gain(ds):
            return (
                results[ds]["AWB-GCN"]["detailed"].latency_seconds
                / results[ds]["CEGMA"]["detailed"].latency_seconds
            )

        assert gain("RD-B") > gain("AIDS")


class TestStructure:
    def test_pair_count_propagated(self, results):
        result = results["AIDS"]["CEGMA"]["detailed"]
        assert result.num_pairs == 4

    def test_energy_positive(self, results):
        for per_platform in results.values():
            for pair in per_platform.values():
                assert pair["detailed"].energy_joules > 0
