"""Cross-cutting property-based tests (hypothesis).

Each class pins one invariant the reproduction leans on. These
complement the per-module tests with randomized coverage.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cgc import SCHEDULERS, batch_coordinated_schedule
from repro.counters import FlopCounter
from repro.emf import MatchingPlan, elastic_matching_filter
from repro.graphs import Graph, GraphPair, GraphPairBatch, erdos_renyi_graph
from repro.models import similarity_matrix
from repro.sim import DRAMModel


def _pair(seed, n_t=6, n_q=7):
    rng = np.random.default_rng(seed)
    return GraphPair(
        erdos_renyi_graph(n_t, n_t + 2, rng),
        erdos_renyi_graph(n_q, n_q + 3, rng),
    )


class TestFilterProperties:
    @given(
        features=arrays(
            np.float64, (12, 3), elements=st.floats(-3, 3, width=16)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_idempotent_on_unique_rows(self, features):
        """Re-filtering the unique rows finds no further duplicates."""
        first = elastic_matching_filter(features)
        unique = features[first.unique_indices]
        second = elastic_matching_filter(unique)
        assert second.num_duplicates == 0

    @given(
        features=arrays(
            np.float64, (10, 2), elements=st.floats(-2, 2, width=16)
        ),
        permutation_seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_unique_count_permutation_invariant(
        self, features, permutation_seed
    ):
        """Which nodes are unique depends on order; how many does not."""
        rng = np.random.default_rng(permutation_seed)
        shuffled = features[rng.permutation(len(features))]
        assert (
            elastic_matching_filter(features).num_unique
            == elastic_matching_filter(shuffled).num_unique
        )

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_multiplicities_sum_to_node_count(self, seed):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(3, 4))
        features = base[rng.integers(0, 3, size=15)]
        result = elastic_matching_filter(features)
        assert result.multiplicities().sum() == result.num_nodes


class TestBroadcastProperties:
    @given(
        seed=st.integers(0, 200),
        kind=st.sampled_from(["dot", "cosine", "euclidean"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_broadcast_always_lossless_on_replicated_rows(self, seed, kind):
        rng = np.random.default_rng(seed)
        base_x = rng.normal(size=(4, 5))
        base_y = rng.normal(size=(3, 5))
        x = base_x[rng.integers(0, 4, size=9)]
        y = base_y[rng.integers(0, 3, size=8)]
        plan = MatchingPlan.from_features(x, y)
        full = similarity_matrix(x, y, kind)
        assert np.array_equal(
            plan.broadcast(plan.unique_similarity(full)), full
        )


class TestSchedulerProperties:
    # The oracle scheme is excluded from the hypothesis sweeps: its
    # per-decision rollouts are quadratic and it is a reference point,
    # not a dataflow. Its coverage is pinned by a direct test below.
    FAST_SCHEMES = ("single", "double", "joint", "coordinated")

    @given(seed=st.integers(0, 60), capacity=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_every_scheme_covers_workload(self, seed, capacity):
        pair = _pair(seed)
        expected_edges = pair.target.num_edges + pair.query.num_edges
        for scheme in self.FAST_SCHEMES:
            schedule = SCHEDULERS[scheme](pair, capacity)
            assert schedule.total_matchings == pair.num_matching_pairs, scheme
            assert schedule.total_edges == expected_edges, scheme

    def test_oracle_scheme_covers_workload(self):
        pair = _pair(7)
        schedule = SCHEDULERS["oracle"](pair, 4)
        assert schedule.total_matchings == pair.num_matching_pairs
        assert (
            schedule.total_edges
            == pair.target.num_edges + pair.query.num_edges
        )

    @given(seed=st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_misses_monotone_in_capacity(self, seed):
        """More buffer never hurts the coordinated schedule much: the
        total misses at double capacity stay at or below the misses at
        the smaller capacity (allowing equality)."""
        pair = _pair(seed)
        small = SCHEDULERS["coordinated"](pair, 4).total_misses
        large = SCHEDULERS["coordinated"](pair, 16).total_misses
        assert large <= small

    @given(seed=st.integers(0, 40), batch_size=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_batch_schedule_equals_sum_of_pairs(self, seed, batch_size):
        pairs = [_pair(seed * 10 + i) for i in range(batch_size)]
        batch = GraphPairBatch(pairs)
        schedule = batch_coordinated_schedule(batch, capacity=6)
        assert schedule.total_matchings == batch.num_matching_pairs
        assert schedule.total_edges == batch.num_intra_edges


class TestCounterProperties:
    @given(
        values=st.lists(
            st.tuples(
                st.sampled_from(["aggregate", "combine", "match", "other"]),
                st.integers(0, 10_000),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_total_equals_sum_of_adds(self, values):
        counter = FlopCounter()
        for phase, amount in values:
            counter.add(phase, amount)
        assert counter.total == sum(amount for _, amount in values)

    @given(a=st.integers(0, 1000), b=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_merge_commutes(self, a, b):
        x, y = FlopCounter(), FlopCounter()
        x.add("match", a)
        y.add("match", b)
        assert x.merged(y).counts == y.merged(x).counts


class TestDRAMProperties:
    @given(
        size_a=st.integers(1, 1 << 20),
        size_b=st.integers(1, 1 << 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_cycles_monotone_in_bytes(self, size_a, size_b):
        model = DRAMModel()
        lo, hi = sorted((size_a, size_b))
        assert model.access_cycles(lo) <= model.access_cycles(hi)

    @given(size=st.integers(1, 1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_effective_bandwidth_bounded_by_peak(self, size):
        model = DRAMModel()
        for sequential in (True, False):
            assert (
                model.effective_bandwidth(size, sequential)
                <= model.bandwidth_bytes_per_cycle
            )


class TestGraphProperties:
    @given(n=st.integers(1, 20), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_degree_sums_match_edges(self, n, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi_graph(n, 2 * n, rng)
        assert g.in_degree().sum() == g.num_edges
        assert g.out_degree().sum() == g.num_edges

    @given(n=st.integers(2, 15), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_normalized_adjacency_spectral_bound(self, n, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi_graph(n, n, rng)
        eigenvalues = np.linalg.eigvalsh(g.normalized_adjacency())
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9
