"""Tests for the metrics registry: identity, merge laws, activation."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_metrics,
    metric_key,
    metrics_enabled,
    set_metrics,
)


class TestMetricKey:
    def test_no_labels_is_bare_name(self):
        assert metric_key("sim.cycles", {}) == "sim.cycles"

    def test_labels_are_sorted(self):
        key = metric_key("sim.cycles", {"platform": "CEGMA", "batch": 0})
        assert key == "sim.cycles{batch=0,platform=CEGMA}"


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        assert registry.counter("hits") == 3

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.inc("cycles", 5, platform="CEGMA")
        registry.inc("cycles", 7, platform="HyGCN")
        assert registry.counter("cycles", platform="CEGMA") == 5
        assert registry.counter("cycles", platform="HyGCN") == 7
        assert registry.counter("cycles") == 0

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("occupancy", 3)
        registry.set_gauge("occupancy", 9)
        assert registry.gauge("occupancy") == 9
        assert registry.gauge("missing") is None


class TestHistogram:
    def test_observe_tracks_stats(self):
        histogram = Histogram()
        for value in (1, 2, 4, 100):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 107
        assert histogram.min == 1
        assert histogram.max == 100
        assert histogram.mean == pytest.approx(26.75)

    def test_bucket_placement(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 99.0):
            histogram.observe(value)
        # bounds are upper-inclusive; 99 overflows.
        assert histogram.bucket_counts == [2, 0, 1, 1]

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_merge_requires_same_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_round_trip(self):
        histogram = Histogram()
        histogram.observe(7)
        restored = Histogram.from_dict(histogram.as_dict())
        assert restored.as_dict() == histogram.as_dict()

    def test_empty_round_trip(self):
        restored = Histogram.from_dict(Histogram().as_dict())
        assert restored.count == 0
        assert restored.bounds == DEFAULT_BUCKETS


class TestQuantile:
    def test_empty_returns_none(self):
        assert Histogram().quantile(0.5) is None

    def test_out_of_range_rejected(self):
        histogram = Histogram()
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_extremes_clamp_to_observed(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (3.0, 4.0, 5.0):
            histogram.observe(value)
        # All observations share the (1, 10] bucket, whose upper bound
        # is 10; the clamp keeps the estimate inside the data.
        assert histogram.quantile(0.0) == 3.0
        assert histogram.quantile(1.0) == 5.0

    def test_median_of_separated_buckets(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.5, 3.0, 7.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 2.0

    def test_overflow_bucket_returns_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5)
        histogram.observe(50.0)
        assert histogram.quantile(1.0) == 50.0

    def test_quantiles_monotone_after_merge(self):
        a = Histogram(bounds=LATENCY_BUCKETS)
        b = Histogram(bounds=LATENCY_BUCKETS)
        for i in range(10):
            a.observe(1e-4 * (i + 1))
            b.observe(1e-2 * (i + 1))
        a.merge(b)
        p50, p99 = a.quantile(0.5), a.quantile(0.99)
        assert p50 <= p99
        assert a.quantile(0.0) == pytest.approx(1e-4)


class TestLatencyBuckets:
    def test_resolves_sub_second_latencies(self):
        # The default buckets start at 1.0 — useless for request
        # latencies; the latency bounds must separate 100 µs from 10 ms.
        histogram = Histogram(bounds=LATENCY_BUCKETS)
        histogram.observe(1e-4)
        histogram.observe(1e-2)
        occupied = [
            index
            for index, count in enumerate(histogram.bucket_counts)
            if count
        ]
        assert len(occupied) == 2

    def test_observe_bounds_used_at_creation_only(self):
        registry = MetricsRegistry()
        registry.observe("latency", 2e-6, bounds=LATENCY_BUCKETS)
        registry.observe("latency", 3e-6)  # existing histogram wins
        histogram = registry.histogram("latency")
        assert histogram.bounds == LATENCY_BUCKETS
        assert histogram.count == 2


def _record(registry, operations):
    for kind, name, value, labels in operations:
        if kind == "inc":
            registry.inc(name, value, **labels)
        elif kind == "gauge":
            registry.set_gauge(name, value, **labels)
        else:
            registry.observe(name, value, **labels)


def _operations():
    """A deterministic mixed workload of metric recordings."""
    operations = []
    for index in range(60):
        platform = ("CEGMA", "HyGCN", "AWB-GCN")[index % 3]
        operations.append(("inc", "sim.cycles", index + 1, {"platform": platform}))
        operations.append(("observe", "occupancy", (index * 7) % 23, {}))
        if index % 5 == 0:
            operations.append(("gauge", "window", index, {"platform": platform}))
    return operations


class TestMerge:
    def test_counters_add_and_gauges_overwrite(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.set_gauge("g", 1)
        b.set_gauge("g", 2)
        a.merge(b)
        assert a.counter("n") == 3
        assert a.gauge("g") == 2

    def test_merge_does_not_alias_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.observe("h", 1)
        a.merge(b)
        b.observe("h", 2)
        assert a.histogram("h").count == 1

    @pytest.mark.parametrize("splits", [(60,), (20, 40), (7, 30, 50)])
    def test_split_points_never_change_totals(self, splits):
        """Merging per-worker registries equals one serial registry, no
        matter where the work was split — the property the parallel
        harness relies on when it fans a run across processes."""
        operations = _operations()
        serial = MetricsRegistry()
        _record(serial, operations)

        bounds = [0, *splits, len(operations)]
        chunks = [
            operations[start:stop]
            for start, stop in zip(bounds, bounds[1:])
        ]
        merged = MetricsRegistry()
        for chunk in chunks:
            worker = MetricsRegistry()
            _record(worker, chunk)
            # Round-trip through as_dict: the wire format workers use.
            merged.merge(MetricsRegistry.from_dict(worker.as_dict()))
        assert merged.as_dict() == serial.as_dict()

    def test_merge_is_associative(self):
        operations = _operations()
        thirds = [operations[0:20], operations[20:40], operations[40:60]]
        parts = []
        for chunk in thirds:
            registry = MetricsRegistry()
            _record(registry, chunk)
            parts.append(registry)

        def snapshot(chunks):
            registries = []
            for chunk in chunks:
                registry = MetricsRegistry()
                _record(registry, chunk)
                registries.append(registry)
            return registries

        left = snapshot(thirds)
        left_assoc = left[0].merge(left[1]).merge(left[2])
        right = snapshot(thirds)
        right[1].merge(right[2])
        right_assoc = right[0].merge(right[1])
        assert left_assoc.as_dict() == right_assoc.as_dict()


class TestRegistrySerialization:
    def test_round_trip(self):
        registry = MetricsRegistry()
        _record(registry, _operations())
        restored = MetricsRegistry.from_dict(registry.as_dict())
        assert restored.as_dict() == registry.as_dict()

    def test_render_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.inc("sim.cycles", 5)
        registry.inc("emf.hits", 2)
        rendered = registry.render("sim.")
        assert "sim.cycles = 5" in rendered
        assert "emf.hits" not in rendered

    def test_clear_and_len(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 1)
        assert len(registry) == 3
        registry.clear()
        assert len(registry) == 0


class TestActivation:
    def test_disabled_by_default(self):
        assert get_metrics() is None

    def test_context_activates_and_restores(self):
        outer = MetricsRegistry()
        with metrics_enabled(outer) as registry:
            assert registry is outer
            assert get_metrics() is outer
            with metrics_enabled() as inner:
                assert get_metrics() is inner
                assert inner is not outer
            assert get_metrics() is outer
        assert get_metrics() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with metrics_enabled():
                raise RuntimeError("boom")
        assert get_metrics() is None

    def test_set_metrics_returns_previous(self):
        registry = MetricsRegistry()
        assert set_metrics(registry) is None
        assert set_metrics(None) is registry
