"""Tests for artifact provenance stamps and their env seams."""

import json

from repro.obs.provenance import (
    PROVENANCE_KEY,
    PROVENANCE_SCHEMA_VERSION,
    current_git_sha,
    make_stamp,
    metrics_digest,
    now_iso,
    read_stamp,
    render_stamp,
    stamp_payload,
    validate_stamp,
)
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


class TestSeams:
    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        assert current_git_sha() == "cafebabe"

    def test_git_sha_never_raises_outside_checkout(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        monkeypatch.chdir(tmp_path)
        sha = current_git_sha()
        assert isinstance(sha, str) and sha

    def test_created_at_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CREATED_AT", "2026-08-07T00:00:00Z")
        assert now_iso() == "2026-08-07T00:00:00Z"

    def test_source_date_epoch(self, monkeypatch):
        monkeypatch.delenv("REPRO_CREATED_AT", raising=False)
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        assert now_iso() == "1970-01-01T00:00:00Z"

    def test_wall_clock_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_CREATED_AT", raising=False)
        monkeypatch.delenv("SOURCE_DATE_EPOCH", raising=False)
        stamp = now_iso()
        assert len(stamp) == 20 and stamp.endswith("Z") and "T" in stamp


class TestDigest:
    def test_stable_across_key_order(self):
        a = metrics_digest({"counters": {"x": 1, "y": 2}})
        b = metrics_digest({"counters": {"y": 2, "x": 1}})
        assert a == b

    def test_none_equals_empty(self):
        assert metrics_digest(None) == metrics_digest({})

    def test_differs_on_value_change(self):
        assert metrics_digest({"x": 1}) != metrics_digest({"x": 2})


class TestStamp:
    def test_make_stamp_is_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        monkeypatch.setenv("REPRO_CREATED_AT", "2026-08-07T00:00:00Z")
        stamp = make_stamp(spec=SPEC, generator="test")
        assert validate_stamp(stamp) == []
        assert stamp["schema_version"] == PROVENANCE_SCHEMA_VERSION
        assert stamp["git_sha"] == "cafebabe"
        assert stamp["spec"]["model"] == "GMN-Li"

    def test_stamp_payload_embeds_and_reads_back(self):
        payload = stamp_payload({"data": [1, 2]}, generator="test")
        assert read_stamp(payload) is payload[PROVENANCE_KEY]
        assert validate_stamp(read_stamp(payload)) == []

    def test_stamp_survives_json_round_trip(self):
        payload = json.loads(json.dumps(stamp_payload({}, spec=SPEC)))
        assert validate_stamp(read_stamp(payload)) == []

    def test_read_stamp_absent(self):
        assert read_stamp({"data": 1}) is None
        assert read_stamp([1, 2]) is None

    def test_validate_rejects_missing_keys(self):
        problems = validate_stamp({"schema_version": 1})
        assert any("git_sha" in p for p in problems)

    def test_validate_rejects_future_version(self):
        stamp = make_stamp()
        stamp["schema_version"] = 99
        assert any("99" in p for p in validate_stamp(stamp))

    def test_validate_rejects_broken_spec(self):
        stamp = make_stamp()
        stamp["spec"] = {"model": "GMN-Li"}  # missing required fields
        assert any("spec" in p for p in validate_stamp(stamp))

    def test_render_mentions_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        text = render_stamp(make_stamp(spec=SPEC, extra={"seed": 7}))
        assert "cafebabe" in text
        assert SPEC.stem in text
        assert "seed" in text
