"""Tests for the noise-aware bench analytics: gates, trends, attribution."""

import random

import pytest

from repro.obs.analytics import (
    BenchComparison,
    attribute_stages,
    compare_entry,
    compare_history,
    detect_changepoints,
    mad,
    median,
    metric_series,
    render_attribution,
    render_markdown_table,
    render_trend,
    stage_budget_means,
    timing_decision,
    trend_report,
)
from repro.obs.history import BenchHistory, HistoryEntry
from repro.obs.metrics import MetricsRegistry
from repro.obs.regress import RegressionPolicy
from repro.obs.report import RunReport


def _entry(seconds=1.0, noise=0.0, seed=0, checks=None, config=None, tag=""):
    """One history entry with three noisy samples around ``seconds``."""
    rng = random.Random(seed)
    samples = [
        seconds * (1.0 + rng.uniform(-noise, noise)) for _ in range(5)
    ]
    return HistoryEntry(
        bench="unit",
        entry_id=f"id-{seed}-{seconds}-{tag}",
        config=dict(config or {"n": 4}),
        timings={"fast": min(samples)},
        samples={"fast": samples},
        repeats=5,
        speedups={"gain": 2.0},
        checks=dict(checks or {"identical": True, "num_unique": 128}),
        git_sha=f"sha{seed:04d}",
        created_at="2026-08-08T00:00:00+00:00",
    )


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_of_constant_is_zero(self):
        assert mad([5.0, 5.0, 5.0]) == 0.0


class TestTimingDecision:
    def test_identical_samples_never_regress(self):
        samples = [1.0, 1.02, 0.98, 1.01, 0.99]
        verdict = timing_decision(samples, list(samples))
        assert verdict["decision"] == "ok"
        assert verdict["method"] == "ci-overlap"

    def test_injected_2x_slowdown_always_flagged_across_seeds(self):
        # Acceptance property: a genuine 2x slowdown is flagged on
        # every one of 50 seeds, at realistic (5%) repeat noise.
        for seed in range(50):
            rng = random.Random(seed)
            base = [1.0 + rng.uniform(-0.05, 0.05) for _ in range(5)]
            slow = [2.0 + rng.uniform(-0.1, 0.1) for _ in range(5)]
            verdict = timing_decision(base, slow)
            assert verdict["decision"] == "regressed", (seed, verdict)

    def test_identical_distribution_never_flagged_across_seeds(self):
        # Symmetric acceptance property: re-sampling the same
        # distribution is never called a regression on any seed.
        for seed in range(50):
            rng = random.Random(seed)
            base = [1.0 + rng.uniform(-0.05, 0.05) for _ in range(5)]
            rerun = [1.0 + rng.uniform(-0.05, 0.05) for _ in range(5)]
            verdict = timing_decision(base, rerun)
            assert verdict["decision"] == "ok", (seed, verdict)

    def test_improvement_is_symmetric(self):
        base = [2.0, 2.02, 1.98, 2.01, 1.99]
        fast = [1.0, 1.01, 0.99, 1.0, 1.0]
        assert timing_decision(base, fast)["decision"] == "improved"

    def test_single_sample_falls_back_to_ratio_band(self):
        verdict = timing_decision([1.0], [1.3])
        assert verdict["method"] == "ratio-fallback"
        assert verdict["decision"] == "ok"
        assert timing_decision([1.0], [2.2])["decision"] == "regressed"
        assert timing_decision([2.2], [1.0])["decision"] == "improved"

    def test_empty_side_is_no_data(self):
        assert timing_decision([], [1.0])["decision"] == "no-data"
        assert timing_decision([1.0], [])["decision"] == "no-data"

    def test_min_effect_suppresses_significant_but_tiny_shifts(self):
        # Disjoint intervals but only a ~2% shift: below bench_min_effect.
        base = [1.0, 1.0001, 0.9999, 1.0, 1.0]
        shifted = [1.02, 1.0201, 1.0199, 1.02, 1.02]
        assert timing_decision(base, shifted)["decision"] == "ok"


class TestCompareEntry:
    def test_byte_identical_rerun_exits_0(self):
        baseline = _entry(seed=1)
        rerun = _entry(seed=1, tag="rerun")  # same samples, new id
        result = compare_entry([baseline], rerun)
        assert result.status == "ok"
        assert result.exit_code == 0

    def test_deterministic_check_drift_exits_1(self):
        baseline = _entry(checks={"identical": True, "num_unique": 128})
        drifted = _entry(
            seed=2, checks={"identical": True, "num_unique": 127}
        )
        result = compare_entry([baseline], drifted)
        assert result.exit_code == 1
        assert any(f.name == "num_unique" for f in result.findings)

    def test_timing_regression_exits_2(self):
        baseline = _entry(seconds=1.0, noise=0.02, seed=3)
        slower = _entry(seconds=2.0, noise=0.02, seed=4)
        result = compare_entry([baseline], slower)
        assert result.status == "warned"
        assert result.exit_code == 2
        assert any(f.name == "fast" for f in result.warnings)

    def test_explicit_exact_duplicate_of_recorded_entry_passes(self):
        # An explicit --candidate that is already in the history (same
        # content digest) is a pass, not a missing baseline...
        recorded = _entry(seed=1)
        result = compare_entry([recorded], recorded, explicit=True)
        assert result.status == "ok"
        assert result.exit_code == 0
        # ...but the default newest-vs-predecessor shape still reports
        # a sole recorded entry as having no baseline.
        assert compare_entry([recorded], recorded).status == "no-baseline"

    def test_no_comparable_baseline_exits_2(self):
        candidate = _entry()
        assert compare_entry([], candidate).exit_code == 2
        # A prior entry under a different config is not comparable.
        other_config = _entry(config={"n": 9999}, tag="othercfg")
        result = compare_entry([other_config], candidate)
        assert result.status == "no-baseline"
        assert result.exit_code == 2

    def test_environmental_checks_are_info_only(self):
        baseline = _entry(
            checks={"identical": True, "queries_per_second": 10.0}
        )
        current = _entry(
            seed=5, checks={"identical": True, "queries_per_second": 5.0}
        )
        result = compare_entry([baseline], current)
        assert result.exit_code == 0
        assert any(
            info.name == "queries_per_second" for info in result.infos
        )

    def test_gates_against_latest_comparable_not_oldest(self):
        old = _entry(checks={"num_unique": 100}, tag="old")
        new = _entry(checks={"num_unique": 128}, seed=6, tag="new")
        candidate = _entry(checks={"num_unique": 128}, seed=7, tag="cand")
        result = compare_entry([old, new], candidate)
        assert result.exit_code == 0


class TestCompareHistory:
    def test_gates_newest_entry_per_bench(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_entry(seed=1))
        history.append(_entry(seed=1, tag="rerun"))
        results = compare_history(history)
        assert [r.bench for r in results] == ["unit"]
        assert results[0].exit_code == 0

    def test_explicit_candidate_not_required_on_file(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_entry(seed=1))
        candidate = _entry(seconds=2.5, seed=2, tag="cand")
        results = compare_history(
            history, benches=["unit"], candidates={"unit": candidate}
        )
        assert results[0].exit_code == 2  # statistical regression

    def test_empty_history_reports_no_baseline(self, tmp_path):
        history = BenchHistory(tmp_path)
        results = compare_history(history, benches=["ghost"])
        assert results[0].status == "no-baseline"
        assert results[0].exit_code == 2


class TestExitCodeContract:
    def test_findings_dominate_warnings(self):
        comparison = BenchComparison(bench="unit")
        comparison.findings.append(object())  # any truthy content
        comparison.warnings.append(object())
        assert comparison.exit_code == 1

    def test_render_mentions_status(self):
        comparison = BenchComparison(bench="unit", status="no-baseline")
        assert "NO BASELINE" in comparison.render()


class TestChangepoints:
    def test_injected_2x_shift_always_flagged_across_seeds(self):
        for seed in range(50):
            rng = random.Random(seed)
            series = [1.0 + rng.uniform(-0.05, 0.05) for _ in range(8)]
            series += [2.0 + rng.uniform(-0.1, 0.1) for _ in range(3)]
            flagged = detect_changepoints(series)
            assert 8 in flagged, (seed, flagged)

    def test_stable_noisy_series_never_flagged_across_seeds(self):
        for seed in range(50):
            rng = random.Random(seed)
            series = [1.0 + rng.uniform(-0.05, 0.05) for _ in range(12)]
            assert detect_changepoints(series) == [], seed

    def test_constant_series_has_no_changepoints(self):
        assert detect_changepoints([3.0] * 10) == []

    def test_none_gaps_are_skipped(self):
        series = [1.0, None, 1.0, 1.0, None, 5.0]
        assert detect_changepoints(series) == [5]

    def test_window_below_2_raises(self):
        with pytest.raises(ValueError):
            detect_changepoints([1.0, 2.0], window=1)


class TestTrend:
    def test_trend_report_shape_and_render(self):
        entries = [
            _entry(seconds=1.0, seed=i, tag=str(i)) for i in range(4)
        ]
        report = trend_report(entries)
        assert report["kind"] == "repro-bench-trend"
        assert report["bench"] == "unit"
        assert len(report["points"]) == 4
        assert "timing:fast" in report["metrics"]
        assert "speedup:gain" in report["metrics"]
        text = render_trend(report)
        assert "timing:fast" in text

    def test_changepoint_marked_in_render(self):
        entries = [
            _entry(seconds=1.0, seed=i, tag=str(i)) for i in range(6)
        ] + [_entry(seconds=3.0, seed=99, tag="shift")]
        report = trend_report(entries)
        assert report["metrics"]["timing:fast"]["changepoints"]
        assert "changepoint at entry" in render_trend(report)

    def test_metric_series_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="metric kind"):
            metric_series([_entry()], "bogus:thing")

    def test_markdown_table_from_history(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_entry(seed=1))
        table = render_markdown_table(history)
        assert "| bench | speedup | ratio | commit |" in table
        assert "`unit`" in table and "`gain`" in table
        assert "~2.0x" in table


def _serving_report(execute_seconds):
    registry = MetricsRegistry()
    for value in (execute_seconds, execute_seconds):
        registry.observe(
            "search.serve.budget_seconds", value, stage="execute"
        )
        registry.observe("search.serve.budget_seconds", 0.001, stage="rank")
    registry.observe("search.serve.latency_seconds", 2 * execute_seconds)
    return RunReport(metrics=registry)


class TestStageAttribution:
    def test_budget_means_extracted_per_stage(self):
        means = stage_budget_means(_serving_report(0.01))
        assert set(means) == {"execute", "rank"}
        assert means["execute"] == pytest.approx(0.01)

    def test_report_without_budget_histograms_is_empty(self):
        assert stage_budget_means(RunReport(metrics=MetricsRegistry())) == {}
        assert (
            attribute_stages(
                RunReport(metrics=MetricsRegistry()), _serving_report(0.01)
            )
            == []
        )

    def test_slowdown_names_the_guilty_stage(self):
        rows = attribute_stages(_serving_report(0.01), _serving_report(0.03))
        assert rows[0]["stage"] == "execute"
        assert rows[0]["delta_seconds"] == pytest.approx(0.02)
        assert rows[0]["share_of_total_delta"] == pytest.approx(1.0)
        text = render_attribution(rows)
        assert "execute" in text

    def test_policy_knobs_are_carried_by_regression_policy(self):
        policy = RegressionPolicy()
        assert policy.bench_min_samples >= 2
        assert policy.is_environmental_check("queries_per_second")
        assert policy.is_environmental_check("latency_p50_seconds")
        assert not policy.is_environmental_check("num_unique")
