"""Tests for the cProfile collapsed-stack exporter."""

import re

from repro.obs.profiling import (
    collapsed_stacks,
    default_profile_path,
    profiled,
    write_collapsed,
)


def _burn(n=20000):
    total = 0
    for i in range(n):
        total += i * i
    return total


def _outer():
    return _burn()


class TestProfiled:
    def test_writes_folded_file(self, tmp_path):
        path = tmp_path / "run.folded"
        with profiled(path):
            _outer()
        assert path.is_file()
        assert path.read_text().strip()

    def test_no_path_collects_without_writing(self, tmp_path):
        with profiled() as profile:
            _outer()
        assert collapsed_stacks(profile)
        assert list(tmp_path.iterdir()) == []

    def test_writes_even_when_block_raises(self, tmp_path):
        path = tmp_path / "crash.folded"
        try:
            with profiled(path):
                _outer()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert path.is_file()


class TestFoldedFormat:
    def test_lines_are_frames_then_integer_weight(self):
        with profiled() as profile:
            _outer()
        lines = collapsed_stacks(profile)
        pattern = re.compile(r"^[^ ]+(;[^ ]+)? \d+$")
        assert lines
        for line in lines:
            assert pattern.match(line), line

    def test_caller_edge_present(self):
        with profiled() as profile:
            _outer()
        joined = "\n".join(collapsed_stacks(profile))
        assert "_outer;" in joined and ":_burn" in joined

    def test_no_semicolons_or_spaces_inside_frames(self):
        with profiled() as profile:
            _outer()
        for line in collapsed_stacks(profile):
            frames, _, weight = line.rpartition(" ")
            assert weight.isdigit()
            assert frames.count(";") <= 1

    def test_output_is_sorted(self):
        with profiled() as profile:
            _outer()
        lines = collapsed_stacks(profile)
        assert lines == sorted(lines)


class TestWriteCollapsed:
    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "p.folded"
        with profiled() as profile:
            _outer()
        assert write_collapsed(profile, path) == path
        assert path.is_file()
        content = path.read_text()
        assert content.endswith("\n")

    def test_default_path_shape(self):
        path = default_profile_path("GMN-Li_AIDS_p4_b4_s0_quick")
        assert path.name == "GMN-Li_AIDS_p4_b4_s0_quick.folded"
        assert "profiles" in str(path)
