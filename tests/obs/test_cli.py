"""End-to-end tests for the observability CLI surface."""

import json

import pytest

from repro.__main__ import main
from repro.obs.report import REQUIRED_KEYS
from repro.platforms.runspec import QUICK_BATCH, QUICK_PAIRS


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.chdir(tmp_path)
    from repro.experiments.common import clear_workload_caches

    clear_workload_caches()
    yield
    clear_workload_caches()


def _simulate_with_obs(tmp_path):
    trace_path = tmp_path / "trace.json"
    status = main(
        [
            "simulate",
            "--quick",
            "--model",
            "GMN-Li",
            "--dataset",
            "AIDS",
            "--metrics",
            "--trace",
            str(trace_path),
        ]
    )
    assert status == 0
    stem = f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick"
    report_path = tmp_path / "results" / "obs" / f"{stem}_report.json"
    return trace_path, report_path


class TestSimulateObs:
    def test_writes_trace_and_report(self, tmp_path, capsys):
        trace_path, report_path = _simulate_with_obs(tmp_path)
        assert trace_path.is_file()
        assert report_path.is_file()
        output = capsys.readouterr().out
        assert "wrote Chrome trace" in output
        assert "wrote RunReport" in output
        assert "sim.dram.read_bytes{platform=CEGMA}" in output

    def test_trace_is_chrome_trace_json(self, tmp_path):
        trace_path, _ = _simulate_with_obs(tmp_path)
        payload = json.loads(trace_path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events, "expected at least one span event"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)

    def test_report_has_schema_keys(self, tmp_path):
        _, report_path = _simulate_with_obs(tmp_path)
        payload = json.loads(report_path.read_text())
        for key in REQUIRED_KEYS:
            assert key in payload
        assert payload["metrics"]["counters"]
        assert payload["timings"]["profile"]["calls"] == 1

    def test_quick_flag_overrides_workload_size(self, tmp_path, capsys):
        _simulate_with_obs(tmp_path)
        output = capsys.readouterr().out
        assert f"{QUICK_PAIRS} pairs, batch {QUICK_BATCH}" in output

    def test_metrics_off_writes_nothing(self, tmp_path, capsys):
        status = main(
            ["simulate", "--quick", "--model", "GMN-Li", "--dataset", "AIDS"]
        )
        assert status == 0
        assert not (tmp_path / "results").exists()
        assert "RunReport" not in capsys.readouterr().out


class TestObsSubcommand:
    def test_validate_accepts_fresh_report(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "validate", str(report_path)]) == 0
        assert "valid RunReport" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_show_renders_report(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "show", str(report_path)]) == 0
        output = capsys.readouterr().out
        assert "== RunReport:" in output
        assert "-- metrics --" in output

    def test_diff_of_identical_reports_is_clean(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", str(report_path), str(report_path)]) == 0
        assert "(no differences" in capsys.readouterr().out

    def test_diff_flags_counter_changes(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        payload = json.loads(report_path.read_text())
        key = "sim.pairs{platform=CEGMA}"
        payload["metrics"]["counters"][key] += 4
        other = tmp_path / "other.json"
        other.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["obs", "diff", str(report_path), str(other)]) == 0
        assert key in capsys.readouterr().out


class TestObsCheck:
    def test_no_baseline_exits_2(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "check", str(report_path)]) == 2
        assert "no baseline" in capsys.readouterr().out

    def test_update_creates_baseline_then_check_is_clean(
        self, tmp_path, capsys
    ):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        output = capsys.readouterr().out
        assert "archived this run" in output
        assert (tmp_path / "results" / "obs" / "baselines").is_dir()
        # An unmodified re-check against the archived baseline passes.
        assert main(["obs", "check", str(report_path)]) == 0
        assert "OK: all deterministic metrics match" in capsys.readouterr().out

    def test_perturbed_counter_fails_with_named_metric(
        self, tmp_path, capsys
    ):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        payload = json.loads(report_path.read_text())
        key = "sim.macs{platform=CEGMA}"
        payload["metrics"]["counters"][key] += 1
        report_path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["obs", "check", str(report_path)]) == 1
        output = capsys.readouterr().out
        assert "REGRESSIONS" in output
        assert key in output

    def test_explicit_baseline_and_json_out(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        json_out = tmp_path / "regress.json"
        capsys.readouterr()
        status = main(
            [
                "obs",
                "check",
                str(report_path),
                "--baseline",
                str(report_path),
                "--json-out",
                str(json_out),
            ]
        )
        assert status == 0
        payload = json.loads(json_out.read_text())
        assert payload["kind"] == "repro-regression-report"
        assert payload["ok"] is True


class TestObsProvenance:
    def test_experiment_output_carries_valid_stamp(self, tmp_path, capsys):
        data_path = tmp_path / "experiments.json"
        assert (
            main(["experiments", "table3", "--output", str(data_path)]) == 0
        )
        payload = json.loads(data_path.read_text())
        assert "provenance" in payload
        capsys.readouterr()
        assert main(["obs", "provenance", str(data_path)]) == 0
        output = capsys.readouterr().out
        assert "valid provenance" in output
        assert "table3" in output

    def test_unstamped_artifact_exits_1(self, tmp_path, capsys):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"data": [1, 2, 3]}))
        assert main(["obs", "provenance", str(bare)]) == 1
        assert "no provenance stamp" in capsys.readouterr().out


class TestObsDashboardAndBaselines:
    def test_dashboard_renders_archived_workloads(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        out_path = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["obs", "dashboard", "--output", str(out_path)]) == 0
        assert "wrote dashboard (1 workload(s))" in capsys.readouterr().out
        page = out_path.read_text()
        stem = f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick"
        assert stem in page

    def test_baselines_lists_store_contents(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        capsys.readouterr()
        assert main(["obs", "baselines"]) == 0
        output = capsys.readouterr().out
        assert f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick" in output

    def test_baselines_empty_store(self, capsys):
        assert main(["obs", "baselines"]) == 0
        assert "no baselines" in capsys.readouterr().out


class TestProfileFlag:
    def test_simulate_profile_writes_folded_stacks(self, tmp_path, capsys):
        folded = tmp_path / "run.folded"
        status = main(
            [
                "simulate",
                "--quick",
                "--model",
                "GMN-Li",
                "--dataset",
                "AIDS",
                "--profile",
                str(folded),
            ]
        )
        assert status == 0
        assert "wrote collapsed-stack profile" in capsys.readouterr().out
        lines = folded.read_text().strip().splitlines()
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames and weight.isdigit()
