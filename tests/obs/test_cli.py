"""End-to-end tests for the observability CLI surface."""

import json

import pytest

from repro.__main__ import main
from repro.obs.report import REQUIRED_KEYS
from repro.platforms.runspec import QUICK_BATCH, QUICK_PAIRS


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.chdir(tmp_path)
    from repro.experiments.common import clear_workload_caches

    clear_workload_caches()
    yield
    clear_workload_caches()


def _simulate_with_obs(tmp_path):
    trace_path = tmp_path / "trace.json"
    status = main(
        [
            "simulate",
            "--quick",
            "--model",
            "GMN-Li",
            "--dataset",
            "AIDS",
            "--metrics",
            "--trace",
            str(trace_path),
        ]
    )
    assert status == 0
    stem = f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick"
    report_path = tmp_path / "results" / "obs" / f"{stem}_report.json"
    return trace_path, report_path


class TestSimulateObs:
    def test_writes_trace_and_report(self, tmp_path, capsys):
        trace_path, report_path = _simulate_with_obs(tmp_path)
        assert trace_path.is_file()
        assert report_path.is_file()
        output = capsys.readouterr().out
        assert "wrote Chrome trace" in output
        assert "wrote RunReport" in output
        assert "sim.dram.read_bytes{platform=CEGMA}" in output

    def test_trace_is_chrome_trace_json(self, tmp_path):
        trace_path, _ = _simulate_with_obs(tmp_path)
        payload = json.loads(trace_path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events, "expected at least one span event"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)

    def test_report_has_schema_keys(self, tmp_path):
        _, report_path = _simulate_with_obs(tmp_path)
        payload = json.loads(report_path.read_text())
        for key in REQUIRED_KEYS:
            assert key in payload
        assert payload["metrics"]["counters"]
        assert payload["timings"]["profile"]["calls"] == 1

    def test_quick_flag_overrides_workload_size(self, tmp_path, capsys):
        _simulate_with_obs(tmp_path)
        output = capsys.readouterr().out
        assert f"{QUICK_PAIRS} pairs, batch {QUICK_BATCH}" in output

    def test_metrics_off_writes_nothing(self, tmp_path, capsys):
        status = main(
            ["simulate", "--quick", "--model", "GMN-Li", "--dataset", "AIDS"]
        )
        assert status == 0
        assert not (tmp_path / "results").exists()
        assert "RunReport" not in capsys.readouterr().out


class TestObsSubcommand:
    def test_validate_accepts_fresh_report(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "validate", str(report_path)]) == 0
        assert "valid RunReport" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_show_renders_report(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "show", str(report_path)]) == 0
        output = capsys.readouterr().out
        assert "== RunReport:" in output
        assert "-- metrics --" in output

    def test_diff_of_identical_reports_is_clean(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", str(report_path), str(report_path)]) == 0
        assert "(no differences" in capsys.readouterr().out

    def test_diff_flags_counter_changes(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        payload = json.loads(report_path.read_text())
        key = "sim.pairs{platform=CEGMA}"
        payload["metrics"]["counters"][key] += 4
        other = tmp_path / "other.json"
        other.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["obs", "diff", str(report_path), str(other)]) == 0
        assert key in capsys.readouterr().out


class TestObsCheck:
    def test_no_baseline_exits_2(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "check", str(report_path)]) == 2
        assert "no baseline" in capsys.readouterr().out

    def test_update_creates_baseline_then_check_is_clean(
        self, tmp_path, capsys
    ):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        output = capsys.readouterr().out
        assert "archived this run" in output
        assert (tmp_path / "results" / "obs" / "baselines").is_dir()
        # An unmodified re-check against the archived baseline passes.
        assert main(["obs", "check", str(report_path)]) == 0
        assert "OK: all deterministic metrics match" in capsys.readouterr().out

    def test_perturbed_counter_fails_with_named_metric(
        self, tmp_path, capsys
    ):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        payload = json.loads(report_path.read_text())
        key = "sim.macs{platform=CEGMA}"
        payload["metrics"]["counters"][key] += 1
        report_path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["obs", "check", str(report_path)]) == 1
        output = capsys.readouterr().out
        assert "REGRESSIONS" in output
        assert key in output

    def test_explicit_baseline_and_json_out(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        json_out = tmp_path / "regress.json"
        capsys.readouterr()
        status = main(
            [
                "obs",
                "check",
                str(report_path),
                "--baseline",
                str(report_path),
                "--json-out",
                str(json_out),
            ]
        )
        assert status == 0
        payload = json.loads(json_out.read_text())
        assert payload["kind"] == "repro-regression-report"
        assert payload["ok"] is True


class TestObsProvenance:
    def test_experiment_output_carries_valid_stamp(self, tmp_path, capsys):
        data_path = tmp_path / "experiments.json"
        assert (
            main(["experiments", "table3", "--output", str(data_path)]) == 0
        )
        payload = json.loads(data_path.read_text())
        assert "provenance" in payload
        capsys.readouterr()
        assert main(["obs", "provenance", str(data_path)]) == 0
        output = capsys.readouterr().out
        assert "valid provenance" in output
        assert "table3" in output

    def test_unstamped_artifact_exits_1(self, tmp_path, capsys):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"data": [1, 2, 3]}))
        assert main(["obs", "provenance", str(bare)]) == 1
        assert "no provenance stamp" in capsys.readouterr().out


class TestObsDashboardAndBaselines:
    def test_dashboard_renders_archived_workloads(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        out_path = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["obs", "dashboard", "--output", str(out_path)]) == 0
        assert "wrote dashboard (1 workload(s)" in capsys.readouterr().out
        page = out_path.read_text()
        stem = f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick"
        assert stem in page

    def test_baselines_lists_store_contents(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "check", str(report_path), "--update"]) == 0
        capsys.readouterr()
        assert main(["obs", "baselines"]) == 0
        output = capsys.readouterr().out
        assert f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick" in output

    def test_baselines_empty_store(self, capsys):
        assert main(["obs", "baselines"]) == 0
        assert "no baselines" in capsys.readouterr().out


class TestProfileFlag:
    def test_simulate_profile_writes_folded_stacks(self, tmp_path, capsys):
        folded = tmp_path / "run.folded"
        status = main(
            [
                "simulate",
                "--quick",
                "--model",
                "GMN-Li",
                "--dataset",
                "AIDS",
                "--profile",
                str(folded),
            ]
        )
        assert status == 0
        assert "wrote collapsed-stack profile" in capsys.readouterr().out
        lines = folded.read_text().strip().splitlines()
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames and weight.isdigit()


def _bench_file(tmp_path, name="unit", seconds=1.0, unique=128, stem=None):
    from repro.perf.timing import BenchReport

    report = BenchReport(name, config={"n": 4})
    report.add_timing(
        "slow",
        2.0 * seconds,
        samples=[2.0 * seconds, 2.1 * seconds, 2.05 * seconds],
    )
    report.add_timing(
        "fast", seconds, samples=[seconds, 1.01 * seconds, 0.99 * seconds]
    )
    report.repeats = 3
    report.add_speedup("gain", "slow", "fast")
    report.checks["identical"] = True
    report.checks["num_unique"] = unique
    path = tmp_path / (stem or f"BENCH_{name}.json")
    path.write_text(json.dumps(report.as_dict(), sort_keys=True))
    return path


class TestObsBenchRecord:
    def test_record_is_idempotent(self, tmp_path, capsys):
        path = _bench_file(tmp_path)
        assert main(["obs", "bench", "record", str(path)]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["obs", "bench", "record", str(path)]) == 0
        assert "already recorded" in capsys.readouterr().out
        history_file = tmp_path / "results/obs/bench_history/unit.jsonl"
        assert len(history_file.read_text().splitlines()) == 1

    def test_unreadable_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("not json")
        assert main(["obs", "bench", "record", str(bad)]) == 1
        assert "cannot record" in capsys.readouterr().out


class TestObsBenchCompare:
    def test_no_baseline_exits_2(self, tmp_path, capsys):
        path = _bench_file(tmp_path)
        main(["obs", "bench", "record", str(path)])
        capsys.readouterr()
        assert main(["obs", "bench", "compare"]) == 2
        assert "NO BASELINE" in capsys.readouterr().out

    def test_identical_rerun_exits_0_with_json(self, tmp_path, capsys):
        # Two identical payloads differing only in provenance time ->
        # distinct entries, identical samples: the gate must pass.
        first = _bench_file(tmp_path, stem="BENCH_first.json")
        second = tmp_path / "BENCH_second.json"
        payload = json.loads(first.read_text())
        payload["name"] = "unit"
        payload["provenance"]["created_at"] = "2030-01-01T00:00:00+00:00"
        second.write_text(json.dumps(payload))
        main(["obs", "bench", "record", str(first), str(second)])
        out_json = tmp_path / "compare.json"
        status = main(
            ["obs", "bench", "compare", "--json-out", str(out_json)]
        )
        assert status == 0
        report = json.loads(out_json.read_text())
        assert report["comparisons"][0]["status"] == "ok"

    def test_deterministic_drift_exits_1(self, tmp_path, capsys):
        main(["obs", "bench", "record", str(_bench_file(tmp_path))])
        drifted = _bench_file(
            tmp_path, unique=127, stem="BENCH_drift.json"
        )
        status = main(
            ["obs", "bench", "compare", "--candidate", str(drifted)]
        )
        assert status == 1
        assert "num_unique" in capsys.readouterr().out

    def test_timing_regression_exits_2(self, tmp_path, capsys):
        main(["obs", "bench", "record", str(_bench_file(tmp_path))])
        slower = _bench_file(
            tmp_path, seconds=2.5, stem="BENCH_slow.json"
        )
        status = main(
            ["obs", "bench", "compare", "--candidate", str(slower)]
        )
        assert status == 2
        assert "timing warnings" in capsys.readouterr().out

    def test_empty_history_exits_2(self, tmp_path, capsys):
        assert main(["obs", "bench", "compare"]) == 2
        assert "no bench history" in capsys.readouterr().out


class TestObsBenchTrend:
    def test_trend_renders_and_writes_json(self, tmp_path, capsys):
        main(["obs", "bench", "record", str(_bench_file(tmp_path))])
        capsys.readouterr()
        out_json = tmp_path / "trend.json"
        status = main(
            ["obs", "bench", "trend", "--json-out", str(out_json)]
        )
        assert status == 0
        assert "timing:fast" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["trends"][0]["bench"] == "unit"

    def test_markdown_table(self, tmp_path, capsys):
        main(["obs", "bench", "record", str(_bench_file(tmp_path))])
        capsys.readouterr()
        assert main(["obs", "bench", "trend", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| bench | speedup | ratio | commit |" in out
        assert "`unit`" in out

    def test_empty_history_exits_2(self, tmp_path, capsys):
        assert main(["obs", "bench", "trend"]) == 2


class TestObsTailEmptyLog:
    def test_empty_window_log_exits_0(self, tmp_path, capsys):
        log = tmp_path / "windows.jsonl"
        log.write_text("")
        assert main(["obs", "tail", str(log)]) == 0
        assert "no windows recorded" in capsys.readouterr().out

    def test_unreadable_source_still_exits_1(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "missing.jsonl")]) == 1


class TestBenchForwarding:
    def test_search_choice_and_history_flags_forwarded(self, monkeypatch):
        captured = {}

        def fake_main(argv):
            captured["argv"] = list(argv)
            return 0

        import repro.perf.bench as bench_module

        monkeypatch.setattr(bench_module, "main", fake_main)
        status = main(
            [
                "bench",
                "--quick",
                "--only",
                "search",
                "--history-dir",
                "hist",
                "--no-history",
            ]
        )
        assert status == 0
        argv = captured["argv"]
        assert ["--only", "search"] == argv[1:3] or "search" in argv
        assert "--history-dir" in argv and "hist" in argv
        assert "--no-history" in argv
