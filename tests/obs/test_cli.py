"""End-to-end tests for the observability CLI surface."""

import json

import pytest

from repro.__main__ import main
from repro.obs.report import REQUIRED_KEYS
from repro.platforms.runspec import QUICK_BATCH, QUICK_PAIRS


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.chdir(tmp_path)
    from repro.experiments.common import clear_workload_caches

    clear_workload_caches()
    yield
    clear_workload_caches()


def _simulate_with_obs(tmp_path):
    trace_path = tmp_path / "trace.json"
    status = main(
        [
            "simulate",
            "--quick",
            "--model",
            "GMN-Li",
            "--dataset",
            "AIDS",
            "--metrics",
            "--trace",
            str(trace_path),
        ]
    )
    assert status == 0
    stem = f"GMN-Li_AIDS_p{QUICK_PAIRS}_b{QUICK_BATCH}_s0_quick"
    report_path = tmp_path / "results" / "obs" / f"{stem}_report.json"
    return trace_path, report_path


class TestSimulateObs:
    def test_writes_trace_and_report(self, tmp_path, capsys):
        trace_path, report_path = _simulate_with_obs(tmp_path)
        assert trace_path.is_file()
        assert report_path.is_file()
        output = capsys.readouterr().out
        assert "wrote Chrome trace" in output
        assert "wrote RunReport" in output
        assert "sim.dram.read_bytes{platform=CEGMA}" in output

    def test_trace_is_chrome_trace_json(self, tmp_path):
        trace_path, _ = _simulate_with_obs(tmp_path)
        payload = json.loads(trace_path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events, "expected at least one span event"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)

    def test_report_has_schema_keys(self, tmp_path):
        _, report_path = _simulate_with_obs(tmp_path)
        payload = json.loads(report_path.read_text())
        for key in REQUIRED_KEYS:
            assert key in payload
        assert payload["metrics"]["counters"]
        assert payload["timings"]["profile"]["calls"] == 1

    def test_quick_flag_overrides_workload_size(self, tmp_path, capsys):
        _simulate_with_obs(tmp_path)
        output = capsys.readouterr().out
        assert f"{QUICK_PAIRS} pairs, batch {QUICK_BATCH}" in output

    def test_metrics_off_writes_nothing(self, tmp_path, capsys):
        status = main(
            ["simulate", "--quick", "--model", "GMN-Li", "--dataset", "AIDS"]
        )
        assert status == 0
        assert not (tmp_path / "results").exists()
        assert "RunReport" not in capsys.readouterr().out


class TestObsSubcommand:
    def test_validate_accepts_fresh_report(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        assert main(["obs", "validate", str(report_path)]) == 0
        assert "valid RunReport" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_show_renders_report(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "show", str(report_path)]) == 0
        output = capsys.readouterr().out
        assert "== RunReport:" in output
        assert "-- metrics --" in output

    def test_diff_of_identical_reports_is_clean(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", str(report_path), str(report_path)]) == 0
        assert "(no differences" in capsys.readouterr().out

    def test_diff_flags_counter_changes(self, tmp_path, capsys):
        _, report_path = _simulate_with_obs(tmp_path)
        payload = json.loads(report_path.read_text())
        key = "sim.pairs{platform=CEGMA}"
        payload["metrics"]["counters"][key] += 4
        other = tmp_path / "other.json"
        other.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["obs", "diff", str(report_path), str(other)]) == 0
        assert key in capsys.readouterr().out
