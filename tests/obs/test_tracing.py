"""Tests for span tracing and the Chrome trace-event export."""

import json
import time

from repro.obs.tracing import (
    Tracer,
    get_tracer,
    span,
    tracing_enabled,
)


class TestNullPath:
    def test_disabled_by_default(self):
        assert get_tracer() is None

    def test_span_is_shared_noop_when_off(self):
        first = span("anything", platform="CEGMA")
        second = span("other")
        assert first is second  # one shared stateless instance
        with first:
            pass  # must be a usable context manager

    def test_noop_span_records_nothing(self):
        with span("ignored"):
            pass
        with tracing_enabled() as tracer:
            pass
        assert len(tracer) == 0


class TestTracer:
    def test_span_records_complete_event(self):
        with tracing_enabled() as tracer:
            with span("work", platform="CEGMA", batch=3):
                time.sleep(0.001)
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["dur"] > 0
        assert event["args"] == {"platform": "CEGMA", "batch": 3}
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)

    def test_spans_nest(self):
        with tracing_enabled() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        names = [event["name"] for event in tracer.events]
        assert names == ["inner", "outer"]  # inner exits first
        inner, outer = tracer.events
        assert outer["ts"] <= inner["ts"]

    def test_exotic_args_are_stringified(self):
        with tracing_enabled() as tracer:
            with span("work", spec=object()):
                pass
        value = tracer.events[0]["args"]["spec"]
        assert isinstance(value, str)
        json.dumps(tracer.chrome_trace())  # must serialize

    def test_add_events_folds_in_worker_lists(self):
        with tracing_enabled() as tracer:
            with span("parent"):
                pass
            tracer.add_events([
                {"name": "child", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 999}
            ])
        assert len(tracer) == 2

    def test_nesting_restores_previous_tracer(self):
        with tracing_enabled() as outer:
            with tracing_enabled() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is None


class TestChromeExport:
    def test_chrome_trace_shape(self):
        with tracing_enabled() as tracer:
            with span("b"):
                pass
            with span("a"):
                pass
        trace = tracer.chrome_trace()
        assert sorted(trace) == ["displayTimeUnit", "traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        timestamps = [event["ts"] for event in trace["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_write_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work", platform="CEGMA"):
            pass
        path = tracer.write(tmp_path / "sub" / "trace.json")
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["traceEvents"][0]["name"] == "work"

    def test_timestamps_relative_to_origin(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        # The span started after the tracer, so ts is small but >= 0.
        assert tracer.events[0]["ts"] >= 0
