"""Tests for the baseline store: layout, lookup, retention."""

import pytest

from repro.obs.baseline import BaselineStore, spec_key
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)
OTHER = RunSpec.make("SimGNN", "AIDS", 4, 4, 0)


def _report(spec=SPEC, created_at="2026-08-07T00:00:00Z", sha="deadbeef", macs=100):
    registry = MetricsRegistry()
    registry.inc("sim.macs", macs, platform="CEGMA")
    return RunReport(
        spec=spec, metrics=registry, created_at=created_at, git_sha=sha
    )


@pytest.fixture
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


class TestLayout:
    def test_spec_key_is_stem_plus_digest(self):
        key = spec_key(SPEC)
        assert key.startswith(SPEC.stem + "-")
        assert len(key) == len(SPEC.stem) + 1 + 8

    def test_save_writes_report_and_spec_json(self, store):
        path = store.save(_report())
        assert path.is_file()
        assert path.parent.name == spec_key(SPEC)
        assert (path.parent / "spec.json").is_file()
        assert "deadbeef" in path.name
        assert path.name.startswith("20260807T000000Z")

    def test_unkeyed_report_rejected(self, store):
        with pytest.raises(ValueError, match="unkeyed"):
            store.save(RunReport())

    def test_collision_gets_suffix(self, store):
        first = store.save(_report())
        second = store.save(_report())
        assert first != second
        assert second.stem.endswith("-1")


class TestLookup:
    def test_latest_none_when_empty(self, store):
        assert store.latest(SPEC) is None
        assert store.history(SPEC) == []

    def test_latest_returns_newest_by_created_at(self, store):
        store.save(_report(created_at="2026-08-05T00:00:00Z", macs=1))
        store.save(_report(created_at="2026-08-07T00:00:00Z", macs=3))
        store.save(_report(created_at="2026-08-06T00:00:00Z", macs=2))
        latest = store.latest(SPEC)
        assert latest.metrics.counter("sim.macs", platform="CEGMA") == 3
        assert len(store.history(SPEC)) == 3

    def test_v1_report_without_created_at_sorts_oldest(self, store):
        old = _report(macs=1)
        old.created_at = None
        old.git_sha = None
        store.save(old)
        store.save(_report(created_at="2026-08-07T00:00:00Z", macs=2))
        assert store.latest(SPEC).metrics.counter("sim.macs", platform="CEGMA") == 2

    def test_specs_lists_all_keys(self, store):
        store.save(_report())
        store.save(_report(spec=OTHER))
        specs = store.specs()
        assert set(specs.values()) == {SPEC, OTHER}

    def test_specs_skips_broken_entries(self, store, tmp_path):
        store.save(_report())
        broken = store.root / "broken-key"
        broken.mkdir()
        (broken / "spec.json").write_text("not json")
        assert set(store.specs().values()) == {SPEC}


class TestRetention:
    def test_save_prunes_beyond_retain(self, store):
        for day in range(1, 6):
            store.save(
                _report(created_at=f"2026-08-0{day}T00:00:00Z", macs=day),
                retain=3,
            )
        history = store.history(SPEC)
        assert len(history) == 3
        # The oldest two were pruned; the newest survives.
        assert store.latest(SPEC).metrics.counter("sim.macs", platform="CEGMA") == 5
        assert history[0].name.startswith("20260803")

    def test_prune_is_per_spec(self, store):
        store.save(_report())
        store.save(_report(spec=OTHER))
        store.prune(SPEC, keep=1)
        assert len(store.history(OTHER)) == 1

    def test_retain_must_be_positive(self, store):
        with pytest.raises(ValueError, match="retain"):
            store.save(_report(), retain=0)
