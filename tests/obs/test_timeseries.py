"""Tests for windowed metric snapshots."""

import pytest

from repro.obs import LATENCY_BUCKETS, metrics_enabled
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeseriesRecorder, Window, delta_quantile


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeltaQuantile:
    def test_empty_window_has_no_quantile(self):
        assert delta_quantile((1.0, 2.0, 4.0), [0, 0, 0], 0.5) is None

    def test_picks_bucket_upper_bound(self):
        bounds = (1.0, 2.0, 4.0, 8.0)
        deltas = [2, 6, 2, 0]
        assert delta_quantile(bounds, deltas, 0.5) == 2.0
        assert delta_quantile(bounds, deltas, 0.99) == 4.0
        assert delta_quantile(bounds, deltas, 0.0) == 1.0

    def test_overflow_clamps_to_last_bound(self):
        # Observations beyond the last bound land in the final bucket.
        assert delta_quantile((1.0, 2.0), [0, 5], 0.99) == 2.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            delta_quantile((1.0,), [1], 1.5)


class TestWindowRoundTrip:
    def test_to_from_dict(self):
        window = Window(
            index=3,
            start=10.0,
            end=12.0,
            counters={"a": 5.0},
            rates={"a": 2.5},
            gauges={"depth": 1.0},
            histograms={"lat": {"count": 2.0, "sum": 0.5, "mean": 0.25,
                                "p50": 0.2, "p99": None}},
        )
        restored = Window.from_dict(window.to_dict())
        assert restored == window
        assert restored.duration_seconds == 2.0


class TestRecorder:
    def test_counters_become_deltas_and_rates(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(
            registry=registry, interval_seconds=1.0, clock=clock
        )
        registry.inc("served", 5)
        clock.advance(2.0)
        window = recorder.maybe_snapshot()
        assert window.counters["served"] == 5.0
        assert window.rates["served"] == 2.5
        registry.inc("served", 3)
        clock.advance(1.0)
        second = recorder.maybe_snapshot()
        assert second.counters["served"] == 3.0  # delta, not lifetime
        assert second.index == window.index + 1

    def test_interval_gates_snapshots(self):
        clock = FakeClock()
        recorder = TimeseriesRecorder(
            registry=MetricsRegistry(), interval_seconds=1.0, clock=clock
        )
        clock.advance(0.5)
        assert recorder.maybe_snapshot() is None
        assert recorder.maybe_snapshot(force=True) is not None

    def test_histogram_quantiles_use_window_deltas(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(
            registry=registry, interval_seconds=1.0, clock=clock
        )
        registry.observe("lat", 0.5, bounds=LATENCY_BUCKETS)
        clock.advance(1.0)
        recorder.maybe_snapshot()
        # The second window only saw fast traffic; its p99 must ignore
        # the slow lifetime observation above.
        for _ in range(10):
            registry.observe("lat", 0.001, bounds=LATENCY_BUCKETS)
        clock.advance(1.0)
        window = recorder.maybe_snapshot()
        entry = window.histograms["lat"]
        assert entry["count"] == 10.0
        assert entry["p99"] <= 0.002
        histogram = registry.histograms["lat"]
        assert histogram.quantile(0.99) >= 0.5  # lifetime view differs

    def test_quiet_histograms_are_omitted(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(
            registry=registry, interval_seconds=1.0, clock=clock
        )
        registry.observe("lat", 0.5)
        clock.advance(1.0)
        recorder.maybe_snapshot()
        clock.advance(1.0)
        window = recorder.maybe_snapshot()
        assert "lat" not in window.histograms

    def test_resolves_active_registry_lazily(self):
        clock = FakeClock()
        recorder = TimeseriesRecorder(interval_seconds=1.0, clock=clock)
        with metrics_enabled() as registry:
            registry.inc("served", 2)
            clock.advance(1.0)
            window = recorder.maybe_snapshot()
        assert window.counters["served"] == 2.0

    def test_no_registry_yields_empty_window(self):
        clock = FakeClock()
        recorder = TimeseriesRecorder(interval_seconds=1.0, clock=clock)
        clock.advance(1.0)
        window = recorder.maybe_snapshot()
        assert window.counters == {} and window.histograms == {}

    def test_retention_is_bounded_but_index_is_not(self):
        clock = FakeClock()
        recorder = TimeseriesRecorder(
            registry=MetricsRegistry(),
            interval_seconds=1.0,
            max_windows=2,
            clock=clock,
        )
        for _ in range(4):
            clock.advance(1.0)
            recorder.maybe_snapshot()
        assert [w.index for w in recorder.windows] == [2, 3]
        assert recorder.latest().index == 3

    def test_on_window_sink_fires_per_snapshot(self):
        clock = FakeClock()
        seen = []
        recorder = TimeseriesRecorder(
            registry=MetricsRegistry(),
            interval_seconds=1.0,
            clock=clock,
            on_window=seen.append,
        )
        clock.advance(1.0)
        recorder.maybe_snapshot()
        assert len(seen) == 1 and seen[0] is recorder.latest()

    def test_quantile_series_marks_quiet_windows(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(
            registry=registry, interval_seconds=1.0, clock=clock
        )
        registry.observe("lat", 0.004, bounds=LATENCY_BUCKETS)
        clock.advance(1.0)
        recorder.maybe_snapshot()
        clock.advance(1.0)
        recorder.maybe_snapshot()
        series = recorder.quantile_series("lat", field="p50")
        assert series[0] is not None and series[1] is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TimeseriesRecorder(interval_seconds=0.0)
        with pytest.raises(ValueError):
            TimeseriesRecorder(max_windows=0)
