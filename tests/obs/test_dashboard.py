"""Tests for the static HTML dashboard over the baseline store."""

import pytest

from repro.obs.baseline import BaselineStore
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport
from repro.perf.timing import StageTimer
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


def _report(created_at, macs, simulate_s=1.0):
    registry = MetricsRegistry()
    registry.inc("sim.macs", macs, platform="CEGMA")
    registry.inc("harness.trace_memo.hit", 3)
    timer = StageTimer()
    timer.record("simulate", simulate_s)
    return RunReport(
        spec=SPEC,
        metrics=registry,
        timer=timer,
        created_at=created_at,
        git_sha="deadbeef",
    )


@pytest.fixture
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


class TestRender:
    def test_empty_store_renders_hint(self, store):
        page = render_dashboard(store)
        assert "<!doctype html>" in page
        assert "No baselines archived yet" in page
        assert "obs check" in page

    def test_history_renders_sparkline_and_counters(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        store.save(_report("2026-08-06T00:00:00Z", macs=110))
        page = render_dashboard(store)
        assert SPEC.stem in page
        assert "sim.macs{platform=CEGMA}" in page
        assert "<polyline" in page
        assert "deadbeef" in page
        # The newest-vs-previous delta: 100 -> 110 is +10%.
        assert "+10.00%" in page

    def test_environmental_counters_excluded(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        store.save(_report("2026-08-06T00:00:00Z", macs=110))
        page = render_dashboard(store)
        assert "harness.trace_memo.hit" not in page

    def test_stage_seconds_included(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=1, simulate_s=1.0))
        store.save(_report("2026-08-06T00:00:00Z", macs=1, simulate_s=2.0))
        page = render_dashboard(store)
        assert "stage seconds" in page
        assert "simulate" in page

    def test_single_point_has_no_sparkline(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        page = render_dashboard(store)
        assert "<polyline" not in page
        assert "sim.macs{platform=CEGMA}" in page

    def test_max_points_bounds_history(self, store):
        for day in range(1, 8):
            store.save(_report(f"2026-08-0{day}T00:00:00Z", macs=day))
        page = render_dashboard(store, max_points=2)
        assert "2 baseline(s)" in page

    def test_no_external_assets(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        page = render_dashboard(store)
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page


class TestWrite:
    def test_write_creates_file(self, store, tmp_path):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        path = write_dashboard(store, tmp_path / "dash" / "index.html")
        assert path.is_file()
        assert "</html>" in path.read_text()
