"""Tests for the static HTML dashboard over the baseline store."""

import pytest

from repro.obs.baseline import BaselineStore
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport
from repro.perf.timing import StageTimer
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


def _report(created_at, macs, simulate_s=1.0, windows=None, exemplars=None):
    registry = MetricsRegistry()
    registry.inc("sim.macs", macs, platform="CEGMA")
    registry.inc("harness.trace_memo.hit", 3)
    timer = StageTimer()
    timer.record("simulate", simulate_s)
    return RunReport(
        spec=SPEC,
        metrics=registry,
        timer=timer,
        created_at=created_at,
        git_sha="deadbeef",
        windows=windows,
        exemplars=exemplars,
    )


def _window(index, p50):
    return {
        "index": index,
        "start": float(index),
        "end": float(index + 1),
        "counters": {},
        "rates": {},
        "gauges": {},
        "histograms": {
            "search.serve.latency_seconds": {
                "count": 4.0,
                "sum": 4 * p50,
                "mean": p50,
                "p50": p50,
                "p99": 2 * p50,
            }
        },
    }


def _exemplar(request_id, latency, status="ok"):
    return {
        "request_id": request_id,
        "latency_seconds": latency,
        "status": status,
        "tree": {
            "request_id": request_id,
            "annotations": {"batch": "0"},
            "spans": [
                {
                    "stage": "execute",
                    "start": 0.0,
                    "duration_seconds": latency,
                    "attrs": {},
                    "children": [],
                }
            ],
        },
    }


@pytest.fixture
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


class TestRender:
    def test_empty_store_renders_hint(self, store):
        page = render_dashboard(store)
        assert "<!doctype html>" in page
        assert "No baselines archived yet" in page
        assert "obs check" in page

    def test_history_renders_sparkline_and_counters(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        store.save(_report("2026-08-06T00:00:00Z", macs=110))
        page = render_dashboard(store)
        assert SPEC.stem in page
        assert "sim.macs{platform=CEGMA}" in page
        assert "<polyline" in page
        assert "deadbeef" in page
        # The newest-vs-previous delta: 100 -> 110 is +10%.
        assert "+10.00%" in page

    def test_environmental_counters_excluded(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        store.save(_report("2026-08-06T00:00:00Z", macs=110))
        page = render_dashboard(store)
        assert "harness.trace_memo.hit" not in page

    def test_stage_seconds_included(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=1, simulate_s=1.0))
        store.save(_report("2026-08-06T00:00:00Z", macs=1, simulate_s=2.0))
        page = render_dashboard(store)
        assert "stage seconds" in page
        assert "simulate" in page

    def test_single_point_has_no_sparkline(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        page = render_dashboard(store)
        assert "<polyline" not in page
        assert "sim.macs{platform=CEGMA}" in page

    def test_max_points_bounds_history(self, store):
        for day in range(1, 8):
            store.save(_report(f"2026-08-0{day}T00:00:00Z", macs=day))
        page = render_dashboard(store, max_points=2)
        assert "2 baseline(s)" in page

    def test_no_external_assets(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        page = render_dashboard(store)
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page


class TestServingPanels:
    def test_window_quantiles_sparkline_over_windows(self, store):
        store.save(
            _report(
                "2026-08-05T00:00:00Z",
                macs=1,
                windows=[_window(0, 0.004), _window(1, 0.008)],
            )
        )
        page = render_dashboard(store)
        assert "serving telemetry: 2 window(s)" in page
        assert "windowed quantile (seconds)" in page
        assert "search.serve.latency_seconds p50" in page
        assert "search.serve.latency_seconds p99" in page
        assert "<polyline" in page  # two points → a sparkline

    def test_exemplar_trees_render(self, store):
        store.save(
            _report(
                "2026-08-05T00:00:00Z",
                macs=1,
                exemplars=[
                    _exemplar(7, 0.25),
                    _exemplar(3, 0.0, status="expired"),
                ],
            )
        )
        page = render_dashboard(store)
        assert "2 tail exemplar(s)" in page
        assert "request 7 [ok] 250.000 ms" in page
        assert "request 3 [expired]" in page
        assert "- execute: 250.000 ms" in page

    def test_only_newest_reports_telemetry_shown(self, store):
        store.save(
            _report(
                "2026-08-05T00:00:00Z", macs=1, windows=[_window(0, 0.004)]
            )
        )
        store.save(_report("2026-08-06T00:00:00Z", macs=1))
        page = render_dashboard(store)
        # The newest baseline has no windows, so no serving panel.
        assert "serving telemetry" not in page

    def test_reports_without_telemetry_render_unchanged(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=1))
        page = render_dashboard(store)
        assert "serving telemetry" not in page
        assert "tail exemplar" not in page


class TestWrite:
    def test_write_creates_file(self, store, tmp_path):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        path = write_dashboard(store, tmp_path / "dash" / "index.html")
        assert path.is_file()
        assert "</html>" in path.read_text()
