"""Tests for the static HTML dashboard over the baseline store."""

import pytest

from repro.obs.baseline import BaselineStore
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport
from repro.perf.timing import StageTimer
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


def _report(created_at, macs, simulate_s=1.0, windows=None, exemplars=None):
    registry = MetricsRegistry()
    registry.inc("sim.macs", macs, platform="CEGMA")
    registry.inc("harness.trace_memo.hit", 3)
    timer = StageTimer()
    timer.record("simulate", simulate_s)
    return RunReport(
        spec=SPEC,
        metrics=registry,
        timer=timer,
        created_at=created_at,
        git_sha="deadbeef",
        windows=windows,
        exemplars=exemplars,
    )


def _window(index, p50):
    return {
        "index": index,
        "start": float(index),
        "end": float(index + 1),
        "counters": {},
        "rates": {},
        "gauges": {},
        "histograms": {
            "search.serve.latency_seconds": {
                "count": 4.0,
                "sum": 4 * p50,
                "mean": p50,
                "p50": p50,
                "p99": 2 * p50,
            }
        },
    }


def _exemplar(request_id, latency, status="ok"):
    return {
        "request_id": request_id,
        "latency_seconds": latency,
        "status": status,
        "tree": {
            "request_id": request_id,
            "annotations": {"batch": "0"},
            "spans": [
                {
                    "stage": "execute",
                    "start": 0.0,
                    "duration_seconds": latency,
                    "attrs": {},
                    "children": [],
                }
            ],
        },
    }


@pytest.fixture
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


class TestRender:
    def test_empty_store_renders_hint(self, store):
        page = render_dashboard(store)
        assert "<!doctype html>" in page
        assert "No baselines archived yet" in page
        assert "obs check" in page

    def test_history_renders_sparkline_and_counters(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        store.save(_report("2026-08-06T00:00:00Z", macs=110))
        page = render_dashboard(store)
        assert SPEC.stem in page
        assert "sim.macs{platform=CEGMA}" in page
        assert "<polyline" in page
        assert "deadbeef" in page
        # The newest-vs-previous delta: 100 -> 110 is +10%.
        assert "+10.00%" in page

    def test_environmental_counters_excluded(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        store.save(_report("2026-08-06T00:00:00Z", macs=110))
        page = render_dashboard(store)
        assert "harness.trace_memo.hit" not in page

    def test_stage_seconds_included(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=1, simulate_s=1.0))
        store.save(_report("2026-08-06T00:00:00Z", macs=1, simulate_s=2.0))
        page = render_dashboard(store)
        assert "stage seconds" in page
        assert "simulate" in page

    def test_single_point_has_no_sparkline(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        page = render_dashboard(store)
        assert "<polyline" not in page
        assert "sim.macs{platform=CEGMA}" in page

    def test_max_points_bounds_history(self, store):
        for day in range(1, 8):
            store.save(_report(f"2026-08-0{day}T00:00:00Z", macs=day))
        page = render_dashboard(store, max_points=2)
        assert "2 baseline(s)" in page

    def test_no_external_assets(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        page = render_dashboard(store)
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page


class TestServingPanels:
    def test_window_quantiles_sparkline_over_windows(self, store):
        store.save(
            _report(
                "2026-08-05T00:00:00Z",
                macs=1,
                windows=[_window(0, 0.004), _window(1, 0.008)],
            )
        )
        page = render_dashboard(store)
        assert "serving telemetry: 2 window(s)" in page
        assert "windowed quantile (seconds)" in page
        assert "search.serve.latency_seconds p50" in page
        assert "search.serve.latency_seconds p99" in page
        assert "<polyline" in page  # two points → a sparkline

    def test_exemplar_trees_render(self, store):
        store.save(
            _report(
                "2026-08-05T00:00:00Z",
                macs=1,
                exemplars=[
                    _exemplar(7, 0.25),
                    _exemplar(3, 0.0, status="expired"),
                ],
            )
        )
        page = render_dashboard(store)
        assert "2 tail exemplar(s)" in page
        assert "request 7 [ok] 250.000 ms" in page
        assert "request 3 [expired]" in page
        assert "- execute: 250.000 ms" in page

    def test_only_newest_reports_telemetry_shown(self, store):
        store.save(
            _report(
                "2026-08-05T00:00:00Z", macs=1, windows=[_window(0, 0.004)]
            )
        )
        store.save(_report("2026-08-06T00:00:00Z", macs=1))
        page = render_dashboard(store)
        # The newest baseline has no windows, so no serving panel.
        assert "serving telemetry" not in page

    def test_reports_without_telemetry_render_unchanged(self, store):
        store.save(_report("2026-08-05T00:00:00Z", macs=1))
        page = render_dashboard(store)
        assert "serving telemetry" not in page
        assert "tail exemplar" not in page


class TestWrite:
    def test_write_creates_file(self, store, tmp_path):
        store.save(_report("2026-08-05T00:00:00Z", macs=100))
        path = write_dashboard(store, tmp_path / "dash" / "index.html")
        assert path.is_file()
        assert "</html>" in path.read_text()


def _history_entry(seconds, seed, tag=""):
    from repro.obs.history import HistoryEntry

    return HistoryEntry(
        bench="emf",
        entry_id=f"id-{seed}{tag}",
        config={"n": 4},
        timings={"fast": seconds},
        samples={"fast": [seconds, 1.01 * seconds, 0.99 * seconds]},
        repeats=3,
        speedups={"gain": 2.0},
        checks={"identical": True},
        git_sha=f"sha{seed:04d}cafe",
        created_at="2026-08-08T00:00:00+00:00",
    )


class TestTrajectoryPage:
    @pytest.fixture
    def history(self, tmp_path):
        from repro.obs.history import BenchHistory

        return BenchHistory(tmp_path / "bench_history")

    def test_no_history_renders_hint(self, store, history):
        page = render_dashboard(store, history=history)
        assert "no bench history recorded" in page

    def test_omitted_history_renders_no_trajectory(self, store):
        page = render_dashboard(store)
        assert "benchmark trajectory" not in page

    def test_trajectory_sparklines_per_metric(self, store, history):
        for seed in range(3):
            history.append(_history_entry(1.0, seed, tag=str(seed)))
        page = render_dashboard(store, history=history)
        assert "benchmark trajectory" in page
        assert "bench: emf" in page
        assert "timing:fast" in page
        assert "speedup:gain" in page
        assert "<polyline" in page

    def test_changepoint_commit_listed(self, store, history):
        for seed in range(6):
            history.append(_history_entry(1.0, seed, tag=str(seed)))
        history.append(_history_entry(3.0, 99, tag="shift"))
        page = render_dashboard(store, history=history)
        assert "sha0099cafe" in page  # the commit that shifted the metric

    def test_stage_attribution_table_from_serving_baselines(
        self, store, history
    ):
        history.append(_history_entry(1.0, 0))

        def serving_report(created_at, execute_s):
            registry = MetricsRegistry()
            registry.inc("sim.macs", 1, platform="CEGMA")
            registry.observe(
                "search.serve.budget_seconds", execute_s, stage="execute"
            )
            registry.observe(
                "search.serve.budget_seconds", 0.001, stage="rank"
            )
            return RunReport(
                spec=SPEC,
                metrics=registry,
                created_at=created_at,
                git_sha="deadbeef",
            )

        store.save(serving_report("2026-08-05T00:00:00Z", 0.01))
        store.save(serving_report("2026-08-06T00:00:00Z", 0.03))
        page = render_dashboard(store, history=history)
        assert "stage attribution" in page
        assert "execute" in page

    def test_unrenderable_exemplar_tree_degrades_gracefully(self, store):
        broken = _exemplar(9, 0.1)
        broken["tree"]["spans"] = [{"unexpected": "shape"}]
        store.save(
            _report("2026-08-05T00:00:00Z", macs=1, exemplars=[broken])
        )
        page = render_dashboard(store)
        assert "unrenderable span tree" in page
        assert "request 9" in page
