"""Tests for RunReport serialization, validation, and diffing."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    REPORT_KIND,
    RUN_REPORT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    RunReport,
    default_report_path,
    diff_reports,
    validate_report,
)
from repro.obs.tracing import Tracer
from repro.perf.timing import StageTimer
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


def _report():
    registry = MetricsRegistry()
    registry.inc("sim.cycles", 100, platform="CEGMA")
    registry.observe("occupancy", 8)
    tracer = Tracer()
    with tracer.span("simulate", platform="CEGMA"):
        pass
    timer = StageTimer()
    timer.record("profile", 1.5)
    return RunReport(spec=SPEC, metrics=registry, tracer=tracer, timer=timer)


class TestRoundTrip:
    def test_to_dict_has_required_keys(self):
        payload = _report().to_dict()
        assert validate_report(payload) == []
        assert payload["schema_version"] == RUN_REPORT_SCHEMA_VERSION
        assert payload["kind"] == REPORT_KIND

    def test_from_dict_round_trip(self):
        report = _report()
        restored = RunReport.from_dict(report.to_dict())
        assert restored.spec == SPEC
        assert restored.metrics.as_dict() == report.metrics.as_dict()
        assert restored.spans == report.spans
        assert restored.timings == report.timings

    def test_write_and_load(self, tmp_path):
        path = _report().write(tmp_path / "report.json")
        assert path.is_file()
        loaded = RunReport.load(path)
        assert loaded.spec == SPEC
        assert loaded.metrics.counter("sim.cycles", platform="CEGMA") == 100

    def test_default_path_uses_spec_stem(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = _report().write()
        assert path.name == f"{SPEC.stem}_report.json"
        assert path.parent.parts[-2:] == ("results", "obs")

    def test_unkeyed_report(self):
        report = RunReport()
        restored = RunReport.from_dict(report.to_dict())
        assert restored.spec is None
        assert default_report_path(None).name == "run_report.json"

    def test_render_mentions_stem_and_metrics(self):
        rendered = _report().render()
        assert SPEC.stem in rendered
        assert "sim.cycles{platform=CEGMA} = 100" in rendered
        assert "profile: 1.5000s over 1 call(s)" in rendered


class TestRunIdentity:
    def test_defaults_come_from_env_seams(self, monkeypatch):
        monkeypatch.setenv("REPRO_CREATED_AT", "2026-08-07T00:00:00Z")
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        report = _report()
        assert report.created_at == "2026-08-07T00:00:00Z"
        assert report.git_sha == "cafebabe"

    def test_identity_round_trips(self):
        report = _report()
        report.created_at = "2026-08-07T00:00:00Z"
        report.git_sha = "cafebabe"
        restored = RunReport.from_dict(report.to_dict())
        assert restored.created_at == "2026-08-07T00:00:00Z"
        assert restored.git_sha == "cafebabe"

    def test_v1_payload_loads_with_none_identity(self):
        payload = _report().to_dict()
        payload["schema_version"] = 1
        del payload["created_at"]
        del payload["git_sha"]
        assert validate_report(payload) == []
        restored = RunReport.from_dict(payload)
        assert restored.created_at is None
        assert restored.git_sha is None

    def test_render_mentions_identity(self):
        report = _report()
        report.created_at = "2026-08-07T00:00:00Z"
        report.git_sha = "cafebabe"
        rendered = report.render()
        assert "2026-08-07T00:00:00Z" in rendered
        assert "cafebabe" in rendered


class TestValidation:
    def test_non_dict_payload(self):
        assert validate_report([1, 2]) == ["payload is not a JSON object"]

    def test_missing_keys_reported(self):
        problems = validate_report({"schema_version": 1})
        assert any("kind" in problem for problem in problems)
        assert any("metrics" in problem for problem in problems)

    def test_wrong_schema_version(self):
        payload = _report().to_dict()
        payload["schema_version"] = 99
        assert any("schema version" in p for p in validate_report(payload))
        with pytest.raises(ValueError):
            RunReport.from_dict(payload)

    def test_future_version_error_is_actionable(self):
        payload = _report().to_dict()
        payload["schema_version"] = 99
        problems = validate_report(payload)
        assert len(problems) == 1
        message = problems[0]
        assert "99" in message
        for version in SUPPORTED_SCHEMA_VERSIONS:
            assert str(version) in message
        assert "newer" in message

    def test_v2_requires_identity_keys(self):
        payload = _report().to_dict()
        del payload["created_at"]
        problems = validate_report(payload)
        assert any("created_at" in p for p in problems)

    def test_v2_identity_keys_must_be_string_or_null(self):
        payload = _report().to_dict()
        payload["git_sha"] = 12345
        problems = validate_report(payload)
        assert any("git_sha" in p and "string" in p for p in problems)

    def test_wrong_kind(self):
        payload = _report().to_dict()
        payload["kind"] = "something-else"
        assert any("kind" in problem for problem in validate_report(payload))

    def test_malformed_sections(self):
        payload = _report().to_dict()
        payload["metrics"] = {"counters": {}}
        payload["spans"] = "nope"
        payload["timings"] = []
        problems = validate_report(payload)
        assert len(problems) == 3

    def test_survives_json_round_trip(self):
        payload = json.loads(json.dumps(_report().to_dict()))
        assert validate_report(payload) == []


class TestServingTelemetrySections:
    def _window(self):
        return {
            "index": 0,
            "start": 0.0,
            "end": 1.0,
            "counters": {"search.serve.admitted": 4.0},
            "rates": {"search.serve.admitted": 4.0},
            "gauges": {},
            "histograms": {},
        }

    def _exemplar(self):
        return {
            "request_id": 7,
            "latency_seconds": 0.25,
            "status": "ok",
            "tree": {"request_id": 7, "annotations": {}, "spans": []},
        }

    def test_v3_round_trip(self):
        registry = MetricsRegistry()
        report = RunReport(
            spec=SPEC,
            metrics=registry,
            windows=[self._window()],
            exemplars=[self._exemplar()],
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["schema_version"] == 3
        assert validate_report(payload) == []
        restored = RunReport.from_dict(payload)
        assert restored.windows == [self._window()]
        assert restored.exemplars == [self._exemplar()]

    def test_v2_payload_loads_with_empty_sections(self):
        payload = _report().to_dict()
        payload["schema_version"] = 2
        del payload["windows"]
        del payload["exemplars"]
        assert validate_report(payload) == []
        restored = RunReport.from_dict(payload)
        assert restored.windows == []
        assert restored.exemplars == []

    def test_v3_requires_list_sections(self):
        payload = _report().to_dict()
        payload["windows"] = {"nope": 1}
        problems = validate_report(payload)
        assert any("windows" in p for p in problems)
        payload = _report().to_dict()
        del payload["exemplars"]
        problems = validate_report(payload)
        assert any("exemplars" in p for p in problems)

    def test_render_mentions_telemetry(self):
        registry = MetricsRegistry()
        report = RunReport(
            spec=SPEC,
            metrics=registry,
            windows=[self._window()],
            exemplars=[self._exemplar()],
        )
        rendered = report.render()
        assert "1 window(s)" in rendered
        assert "1 exemplar(s)" in rendered


class TestDiff:
    def test_identical_reports_have_no_diff(self):
        text = diff_reports(_report(), _report())
        assert "(no differences" in text

    def test_changed_counter_is_reported(self):
        old = _report()
        new = _report()
        new.metrics.inc("sim.cycles", 50, platform="CEGMA")
        text = diff_reports(old, new)
        assert "sim.cycles{platform=CEGMA}: 100 -> 150" in text

    def test_added_and_removed_keys(self):
        old = _report()
        new = _report()
        new.metrics.inc("emf.hits", 7)
        old.metrics.inc("old.only", 1)
        text = diff_reports(old, new)
        assert "+ emf.hits = 7" in text
        assert "- old.only = 1" in text

    def test_timing_changes_reported(self):
        old = _report()
        new = _report()
        new.timings["profile"]["seconds"] = 3.0
        assert "profile: 1.5 -> 3" in diff_reports(old, new)

    def test_disjoint_metric_sets_get_clean_sections(self):
        old = RunReport(spec=SPEC)
        new = RunReport(spec=SPEC)
        old.metrics.inc("era1.counter", 5)
        new.metrics.inc("era2.counter", 9)
        text = diff_reports(old, new)
        assert "-- counters (only in old) --" in text
        assert "- era1.counter = 5" in text
        assert "-- counters (only in new) --" in text
        assert "+ era2.counter = 9" in text
        # Disjoint keys are not value changes.
        assert "~" not in text

    def test_commit_line_when_shas_differ(self):
        old = _report()
        new = _report()
        old.git_sha = "aaa111"
        new.git_sha = "bbb222"
        assert "commit: aaa111 -> bbb222" in diff_reports(old, new)

    def test_no_commit_line_for_same_sha(self):
        old = _report()
        new = _report()
        old.git_sha = new.git_sha = "aaa111"
        assert "commit:" not in diff_reports(old, new)
