"""Tests for RunReport serialization, validation, and diffing."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    REPORT_KIND,
    RUN_REPORT_SCHEMA_VERSION,
    RunReport,
    default_report_path,
    diff_reports,
    validate_report,
)
from repro.obs.tracing import Tracer
from repro.perf.timing import StageTimer
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


def _report():
    registry = MetricsRegistry()
    registry.inc("sim.cycles", 100, platform="CEGMA")
    registry.observe("occupancy", 8)
    tracer = Tracer()
    with tracer.span("simulate", platform="CEGMA"):
        pass
    timer = StageTimer()
    timer.record("profile", 1.5)
    return RunReport(spec=SPEC, metrics=registry, tracer=tracer, timer=timer)


class TestRoundTrip:
    def test_to_dict_has_required_keys(self):
        payload = _report().to_dict()
        assert validate_report(payload) == []
        assert payload["schema_version"] == RUN_REPORT_SCHEMA_VERSION
        assert payload["kind"] == REPORT_KIND

    def test_from_dict_round_trip(self):
        report = _report()
        restored = RunReport.from_dict(report.to_dict())
        assert restored.spec == SPEC
        assert restored.metrics.as_dict() == report.metrics.as_dict()
        assert restored.spans == report.spans
        assert restored.timings == report.timings

    def test_write_and_load(self, tmp_path):
        path = _report().write(tmp_path / "report.json")
        assert path.is_file()
        loaded = RunReport.load(path)
        assert loaded.spec == SPEC
        assert loaded.metrics.counter("sim.cycles", platform="CEGMA") == 100

    def test_default_path_uses_spec_stem(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = _report().write()
        assert path.name == f"{SPEC.stem}_report.json"
        assert path.parent.parts[-2:] == ("results", "obs")

    def test_unkeyed_report(self):
        report = RunReport()
        restored = RunReport.from_dict(report.to_dict())
        assert restored.spec is None
        assert default_report_path(None).name == "run_report.json"

    def test_render_mentions_stem_and_metrics(self):
        rendered = _report().render()
        assert SPEC.stem in rendered
        assert "sim.cycles{platform=CEGMA} = 100" in rendered
        assert "profile: 1.5000s over 1 call(s)" in rendered


class TestValidation:
    def test_non_dict_payload(self):
        assert validate_report([1, 2]) == ["payload is not a JSON object"]

    def test_missing_keys_reported(self):
        problems = validate_report({"schema_version": 1})
        assert any("kind" in problem for problem in problems)
        assert any("metrics" in problem for problem in problems)

    def test_wrong_schema_version(self):
        payload = _report().to_dict()
        payload["schema_version"] = 99
        assert any("schema version" in p for p in validate_report(payload))
        with pytest.raises(ValueError):
            RunReport.from_dict(payload)

    def test_wrong_kind(self):
        payload = _report().to_dict()
        payload["kind"] = "something-else"
        assert any("kind" in problem for problem in validate_report(payload))

    def test_malformed_sections(self):
        payload = _report().to_dict()
        payload["metrics"] = {"counters": {}}
        payload["spans"] = "nope"
        payload["timings"] = []
        problems = validate_report(payload)
        assert len(problems) == 3

    def test_survives_json_round_trip(self):
        payload = json.loads(json.dumps(_report().to_dict()))
        assert validate_report(payload) == []


class TestDiff:
    def test_identical_reports_have_no_diff(self):
        text = diff_reports(_report(), _report())
        assert "(no differences" in text

    def test_changed_counter_is_reported(self):
        old = _report()
        new = _report()
        new.metrics.inc("sim.cycles", 50, platform="CEGMA")
        text = diff_reports(old, new)
        assert "sim.cycles{platform=CEGMA}: 100 -> 150" in text

    def test_added_and_removed_keys(self):
        old = _report()
        new = _report()
        new.metrics.inc("emf.hits", 7)
        old.metrics.inc("old.only", 1)
        text = diff_reports(old, new)
        assert "+ emf.hits = 7" in text
        assert "- old.only = 1" in text

    def test_timing_changes_reported(self):
        old = _report()
        new = _report()
        new.timings["profile"]["seconds"] = 3.0
        assert "profile: 1.5 -> 3" in diff_reports(old, new)
