"""Tests for the regression detector and RegressionReport schema."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.regress import (
    DETERMINISTIC_PREFIXES,
    RegressionPolicy,
    RegressionReport,
    compare_reports,
)
from repro.obs.report import RunReport
from repro.perf.timing import StageTimer
from repro.platforms import RunSpec

SPEC = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)


def _report(macs=100.0, hits=5.0, simulate_s=1.0, occupancy=(4, 8)):
    registry = MetricsRegistry()
    registry.inc("sim.macs", macs, platform="CEGMA")
    registry.inc("harness.trace_memo.hit", hits)
    for value in occupancy:
        registry.observe("cgc.window.occupancy", value, platform="CEGMA")
    timer = StageTimer()
    timer.record("simulate", simulate_s)
    return RunReport(
        spec=SPEC,
        metrics=registry,
        timer=timer,
        created_at="2026-08-07T00:00:00Z",
        git_sha="deadbeef",
    )


class TestPolicy:
    def test_default_prefixes_cover_sim_layers(self):
        policy = RegressionPolicy()
        for name in (
            "sim.macs{platform=CEGMA}",
            "emf.filter.calls",
            "cgc.window.advances",
            "dram.bytes{pattern=row}",
            "pe.gemm.cycles",
        ):
            assert policy.is_deterministic(name), name

    def test_environmental_counters_excluded(self):
        policy = RegressionPolicy()
        for name in (
            "harness.trace_memo.hit",
            "trace_cache.miss",
            "perf.parallel.worker_failures",
        ):
            assert not policy.is_deterministic(name), name

    def test_prefixes_constant_is_policy_default(self):
        assert RegressionPolicy().deterministic_prefixes == DETERMINISTIC_PREFIXES

    def test_serving_counters_split_by_determinism(self):
        policy = RegressionPolicy()
        # Fixed stream + fixed seed => these replay exactly.
        for name in (
            "search.serve.admitted",
            "search.serve.rejected",
            "search.serve.batches",
            "search.serve.deduped_requests",
            "search.serve.candidate_dedup_hits{platform=CEGMA}",
        ):
            assert policy.is_deterministic(name), name
        # Timing-coupled serving metrics must never gate CI.
        for name in (
            "search.serve.expired",
            "search.serve.responses{status=ok}",
            "search.serve.queue_depth",
            "search.serve.latency_seconds",
            "search.serve.budget_seconds{stage=execute}",
            "obs.context.dropped_spans",
        ):
            assert not policy.is_deterministic(name), name


class TestCompare:
    def test_identical_reports_are_ok(self):
        result = compare_reports(_report(), _report())
        assert result.ok
        assert "OK" in result.render()

    def test_deterministic_counter_drift_is_regression(self):
        result = compare_reports(_report(macs=100), _report(macs=101))
        assert not result.ok
        assert result.findings[0].name == "sim.macs{platform=CEGMA}"
        assert "sim.macs{platform=CEGMA}" in result.render()

    def test_environmental_counter_drift_is_info_only(self):
        result = compare_reports(_report(hits=5), _report(hits=50))
        assert result.ok
        assert any(
            info.name == "harness.trace_memo.hit" for info in result.infos
        )

    def test_missing_deterministic_counter_is_regression(self):
        baseline = _report()
        current = _report()
        baseline.metrics.inc("sim.layers", 5, platform="CEGMA")
        result = compare_reports(baseline, current)
        assert not result.ok
        assert "missing from run" in result.findings[0].detail

    def test_new_deterministic_counter_is_regression(self):
        baseline = _report()
        current = _report()
        current.metrics.inc("sim.new_thing", 1)
        result = compare_reports(baseline, current)
        assert not result.ok
        assert "not in baseline" in result.findings[0].detail

    def test_histogram_drift_is_regression(self):
        result = compare_reports(
            _report(occupancy=(4, 8)), _report(occupancy=(4, 9))
        )
        assert not result.ok
        assert result.findings[0].kind == "histogram"

    def test_spec_mismatch_is_finding(self):
        other = _report()
        current = RunReport(
            spec=RunSpec.make("SimGNN", "AIDS", 4, 4, 0),
            metrics=other.metrics,
            created_at="2026-08-07T00:00:00Z",
            git_sha="deadbeef",
        )
        result = compare_reports(_report(), current)
        assert not result.ok
        assert result.findings[0].kind == "spec"


class TestTimingTolerance:
    def test_drift_is_info_without_tolerance(self):
        result = compare_reports(
            _report(simulate_s=1.0), _report(simulate_s=10.0)
        )
        assert result.ok
        assert any(info.kind == "timing" for info in result.infos)

    def test_drift_beyond_band_is_regression(self):
        policy = RegressionPolicy(timing_rel_tol=0.25)
        result = compare_reports(
            _report(simulate_s=1.0), _report(simulate_s=1.5), policy
        )
        assert not result.ok
        assert result.findings[0].kind == "timing"
        assert "tolerance" in result.findings[0].detail

    def test_speedup_never_fails(self):
        policy = RegressionPolicy(timing_rel_tol=0.25)
        result = compare_reports(
            _report(simulate_s=2.0), _report(simulate_s=0.5), policy
        )
        assert result.ok

    def test_drift_within_band_is_ok(self):
        policy = RegressionPolicy(timing_rel_tol=0.5)
        result = compare_reports(
            _report(simulate_s=1.0), _report(simulate_s=1.2), policy
        )
        assert result.ok


class TestRegressionReportSchema:
    def test_round_trip(self):
        result = compare_reports(_report(macs=1), _report(macs=2))
        restored = RegressionReport.from_dict(result.to_dict())
        assert restored.findings == result.findings
        assert restored.infos == result.infos
        assert restored.ok == result.ok

    def test_future_version_rejected(self):
        payload = compare_reports(_report(), _report()).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="99"):
            RegressionReport.from_dict(payload)

    def test_wrong_kind_rejected(self):
        payload = compare_reports(_report(), _report()).to_dict()
        payload["kind"] = "nope"
        with pytest.raises(ValueError, match="kind"):
            RegressionReport.from_dict(payload)
