"""Instrumentation agreement tests.

The counters the simulator emits must agree with the post-hoc analysis
paths the figures use — otherwise the observability layer would tell a
different story than the paper's plots for the same RunSpec.
"""

import pytest

from repro.analysis.redundancy import remaining_matching_fraction
from repro.core.api import simulate_traces
from repro.emf.filter import elastic_matching_filter
from repro.cgc.aoe import approximate_outlier_estimation
from repro.experiments.common import clear_workload_caches, workload_traces
from repro.obs.metrics import metrics_enabled
from repro.obs.tracing import tracing_enabled
from repro.platforms import RunSpec

PLATFORMS = ("HyGCN", "AWB-GCN", "CEGMA")


@pytest.fixture(autouse=True)
def _isolated_caches(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    clear_workload_caches()
    yield
    clear_workload_caches()


@pytest.fixture(scope="module")
def traces():
    return workload_traces("GMN-Li", "AIDS", 4, 4, 0)


class TestFigureAgreement:
    def test_dram_counters_match_fig17_path(self, traces):
        """sim.dram.* counters must equal PlatformResult.dram_bytes —
        the quantity fig17 normalizes."""
        with metrics_enabled() as registry:
            results = simulate_traces(traces, PLATFORMS)
        for platform in PLATFORMS:
            counted = registry.counter(
                "sim.dram.read_bytes", platform=platform
            ) + registry.counter("sim.dram.write_bytes", platform=platform)
            assert counted == pytest.approx(results[platform].dram_bytes)

    def test_emf_skip_rate_matches_fig18_path(self, traces):
        """emf.matchings.unique/total must reproduce fig18's
        remaining_matching_fraction for the same workload."""
        with metrics_enabled() as registry:
            simulate_traces(traces, ("CEGMA",))
        total = registry.counter("emf.matchings.total", platform="CEGMA")
        unique = registry.counter("emf.matchings.unique", platform="CEGMA")
        assert total > 0
        pair_traces = [
            trace for batch in traces for trace in batch.pair_traces
        ]
        expected = remaining_matching_fraction(pair_traces)
        assert unique / total == pytest.approx(expected)

    def test_pair_and_cycle_counters(self, traces):
        num_pairs = sum(batch.batch.batch_size for batch in traces)
        with metrics_enabled() as registry:
            results = simulate_traces(traces, ("CEGMA",))
        assert registry.counter("sim.pairs", platform="CEGMA") == num_pairs
        # sim.cycles covers the GNN layers; result.cycles adds readout.
        layer_cycles = registry.counter("sim.cycles", platform="CEGMA")
        assert 0 < layer_cycles <= results["CEGMA"].cycles

    def test_simulation_emits_spans(self, traces):
        with tracing_enabled() as tracer:
            simulate_traces(traces, ("CEGMA",))
        names = {event["name"] for event in tracer.events}
        assert "simulate" in names
        assert "sim.batch" in names


class TestComponentCounters:
    def test_emf_filter_counts_duplicates(self):
        import numpy as np

        features = np.ones((6, 3))
        features[0] = 2.0  # one unique row + five duplicates of another
        with metrics_enabled() as registry:
            result = elastic_matching_filter(features)
        assert registry.counter("emf.filter.calls") == 1
        assert registry.counter("emf.filter.nodes") == 6
        assert registry.counter("emf.filter.unique_nodes") == result.num_unique
        assert registry.counter("emf.filter.duplicate_hits") == 4

    def test_aoe_decision_counters(self):
        with metrics_enabled() as registry:
            assert approximate_outlier_estimation([1, 1], [2, 3]) == 0
            assert approximate_outlier_estimation([5], [1, 1]) == 1
        assert registry.counter("cgc.aoe.decisions", direction="column") == 1
        assert registry.counter("cgc.aoe.decisions", direction="row") == 1
        histogram = registry.histogram("cgc.aoe.outliers")
        assert histogram.count == 2

    def test_window_counters_present(self, traces):
        with metrics_enabled() as registry:
            simulate_traces(traces, ("CEGMA",))
        assert registry.counter("cgc.window.advances", platform="CEGMA") > 0
        occupancy = registry.histogram(
            "cgc.window.occupancy", platform="CEGMA"
        )
        assert occupancy is not None and occupancy.count > 0


class TestHarnessCounters:
    def test_trace_memo_hit_and_miss(self):
        with metrics_enabled() as registry:
            workload_traces("GMN-Li", "AIDS", 2, 2, 0)
            workload_traces("GMN-Li", "AIDS", 2, 2, 0)
        assert registry.counter("harness.trace_memo.miss") == 1
        assert registry.counter("harness.trace_memo.hit") == 1


class TestParallelMerge:
    def test_chunked_simulation_merges_worker_metrics(self, monkeypatch, tmp_path):
        from repro.perf.parallel import parallel_simulate_workload

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)
        with metrics_enabled() as registry:
            results = parallel_simulate_workload(spec, ("CEGMA",), workers=2)
        assert results["CEGMA"].num_pairs == 4
        # Worker registries were shipped back and merged: the parent
        # sees the whole workload's pair count.
        assert registry.counter("sim.pairs", platform="CEGMA") == 4

    def test_spec_fanout_merges_worker_metrics(self, monkeypatch, tmp_path):
        from repro.perf.parallel import parallel_run_specs

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        specs = [
            RunSpec.make("GMN-Li", "AIDS", 2, 2, 0),
            RunSpec.make("GMN-Li", "AIDS", 2, 2, 1),
        ]
        with metrics_enabled() as registry:
            computed = parallel_run_specs(specs, ("CEGMA",), workers=2)
        assert len(computed) == 2
        assert registry.counter("sim.pairs", platform="CEGMA") == 4

    def test_no_collection_when_metrics_off(self, monkeypatch, tmp_path):
        from repro.perf.parallel import _spec_task

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        payload = RunSpec.make("GMN-Li", "AIDS", 2, 2, 0).to_dict()
        _, results, metrics_payload = _spec_task((payload, ("CEGMA",), False))
        assert metrics_payload is None
        assert results["CEGMA"].num_pairs == 2
