"""Tests for request-scoped trace context and span trees."""

import pytest

from repro.obs import metrics_enabled
from repro.obs.context import (
    RequestContext,
    RequestTracker,
    StageSpan,
    render_tree,
)


class TestRequestContext:
    def test_make_freezes_sorted_baggage(self):
        context = RequestContext.make(7, 12.5, tenant="acme", arm=3)
        assert context.request_id == 7
        assert context.deadline == 12.5
        assert context.baggage == (("arm", "3"), ("tenant", "acme"))
        assert context.bag() == {"arm": "3", "tenant": "acme"}

    def test_wire_round_trip(self):
        context = RequestContext.make(1, 2.0, tenant="acme")
        assert RequestContext.from_wire(context.to_wire()) == context

    def test_wire_round_trip_without_optionals(self):
        context = RequestContext.make(4)
        wire = context.to_wire()
        assert wire == {"request_id": 4}
        assert RequestContext.from_wire(wire) == context

    def test_from_wire_requires_request_id(self):
        with pytest.raises(KeyError):
            RequestContext.from_wire({"deadline": 1.0})


class TestStageSpan:
    def test_wire_round_trip(self):
        span = StageSpan(
            request_id=3,
            stage="execute.shard",
            start=1.5,
            duration_seconds=0.25,
            parent="execute",
            attrs=(("shard", "0:8"),),
        )
        assert StageSpan.from_wire(span.to_wire()) == span

    def test_wire_omits_empty_optionals(self):
        span = StageSpan(
            request_id=1, stage="rank", start=0.0, duration_seconds=0.1
        )
        wire = span.to_wire()
        assert "parent" not in wire and "attrs" not in wire
        assert StageSpan.from_wire(wire) == span


class TestRecording:
    def test_budgets_sum_top_level_durations(self):
        tracker = RequestTracker()
        tracker.record(1, "admission", start=0.0, duration_seconds=0.1)
        tracker.record(1, "execute", start=0.1, duration_seconds=0.5)
        tracker.record(
            1,
            "execute.shard",
            start=0.1,
            duration_seconds=0.2,
            parent="execute",
        )
        budgets = tracker.budgets(1)
        # Child spans never count toward the budget: they overlap their
        # parent, so including them would double-count wall-clock time.
        assert budgets == {"admission": 0.1, "execute": 0.5}
        assert sum(budgets.values()) == pytest.approx(0.6)

    def test_negative_durations_clamp_to_zero(self):
        tracker = RequestTracker()
        span = tracker.record(1, "rank", start=5.0, duration_seconds=-0.5)
        assert span.duration_seconds == 0.0

    def test_unknown_request_reads_are_empty(self):
        tracker = RequestTracker()
        assert tracker.spans_for(99) == []
        assert tracker.annotations_for(99) == {}
        assert tracker.budgets(99) == {}
        assert tracker.tree(99) is None

    def test_eviction_counts_dropped_spans(self):
        tracker = RequestTracker(max_requests=2)
        with metrics_enabled() as registry:
            tracker.record(1, "admission", start=0.0, duration_seconds=0.1)
            tracker.record(1, "execute", start=0.1, duration_seconds=0.2)
            tracker.record(2, "admission", start=0.0, duration_seconds=0.1)
            tracker.record(3, "admission", start=0.0, duration_seconds=0.1)
        assert tracker.request_ids() == [2, 3]
        assert tracker.dropped_spans == 2
        assert registry.counter("obs.context.dropped_spans") == 2

    def test_eviction_without_registry_still_counts(self):
        tracker = RequestTracker(max_requests=1)
        tracker.record(1, "admission", start=0.0, duration_seconds=0.1)
        tracker.record(2, "admission", start=0.0, duration_seconds=0.1)
        assert tracker.dropped_spans == 1

    def test_max_requests_must_be_positive(self):
        with pytest.raises(ValueError):
            RequestTracker(max_requests=0)


class TestTree:
    def _tracked(self):
        tracker = RequestTracker()
        tracker.annotate(5, batch=0, primary=5)
        tracker.record(5, "admission", start=0.0, duration_seconds=0.1)
        tracker.record(5, "execute", start=0.2, duration_seconds=0.5)
        tracker.record(
            5,
            "execute.shard",
            start=0.25,
            duration_seconds=0.2,
            parent="execute",
            shard="0:4",
        )
        tracker.record(5, "schedule", start=0.1, duration_seconds=0.1)
        return tracker

    def test_children_nest_under_parent_stage(self):
        tree = self._tracked().tree(5)
        stages = [node["stage"] for node in tree["spans"]]
        # Top-level spans are ordered by start time regardless of the
        # order they were recorded in.
        assert stages == ["admission", "schedule", "execute"]
        execute = tree["spans"][2]
        assert [c["stage"] for c in execute["children"]] == ["execute.shard"]
        assert execute["children"][0]["attrs"] == {"shard": "0:4"}
        assert tree["annotations"] == {"batch": "0", "primary": "5"}
        assert "orphan_spans" not in tree

    def test_orphan_children_are_kept_and_counted(self):
        tracker = RequestTracker()
        tracker.record(
            1, "execute.shard", start=0.0, duration_seconds=0.1,
            parent="execute",
        )
        tree = tracker.tree(1)
        assert tree["orphan_spans"] == 1
        assert [node["stage"] for node in tree["spans"]] == ["execute.shard"]

    def test_render_tree_is_readable(self):
        text = render_tree(self._tracked().tree(5))
        assert text.splitlines()[0] == "request 5"
        assert "[batch=0 primary=5]" in text
        assert "- execute: 500.000 ms" in text
        assert "    - execute.shard: 200.000 ms {shard=0:4}" in text


class TestWorkerTransport:
    def test_wire_ingest_round_trip(self):
        worker = RequestTracker()
        worker.record(
            3,
            "execute.shard",
            start=9.0,
            duration_seconds=0.25,
            parent="execute",
            shard="4:8",
        )
        parent = RequestTracker()
        assert parent.ingest(worker.wire_spans()) == 1
        (span,) = parent.spans_for(3)
        assert span == worker.spans_for(3)[0]

    def test_ingest_parent_override(self):
        worker = RequestTracker()
        worker.record(1, "shard", start=0.0, duration_seconds=0.1)
        parent = RequestTracker()
        parent.ingest(worker.wire_spans(), parent="execute")
        assert parent.spans_for(1)[0].parent == "execute"

    def test_wire_spans_filters_by_request(self):
        tracker = RequestTracker()
        tracker.record(1, "rank", start=0.0, duration_seconds=0.1)
        tracker.record(2, "rank", start=0.0, duration_seconds=0.1)
        assert [
            payload["request_id"]
            for payload in tracker.wire_spans(request_ids=[2])
        ] == [2]


class TestReplicate:
    def test_followers_get_marked_copies_of_children(self):
        tracker = RequestTracker()
        tracker.record(1, "execute", start=0.0, duration_seconds=0.5)
        tracker.record(
            1,
            "execute.shard",
            start=0.0,
            duration_seconds=0.2,
            parent="execute",
            shard="0:4",
        )
        copied = tracker.replicate(1, [2, 3, 1])
        assert copied == 2  # the source itself is skipped
        for follower in (2, 3):
            (span,) = tracker.spans_for(follower)
            assert span.stage == "execute.shard"
            assert span.attr_dict()["replicated_from"] == "1"
        # Top-level spans are not replicated; followers get their own.
        assert tracker.budgets(2) == {}
