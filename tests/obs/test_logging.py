"""Tests for the repro.* logging configuration."""

import io
import logging

from repro.obs.logging import ROOT_LOGGER_NAME, configure_logging


def _flagged_handlers(logger):
    return [
        handler
        for handler in logger.handlers
        if getattr(handler, "_repro_obs_handler", False)
    ]


class TestConfigureLogging:
    def test_verbosity_levels(self):
        assert configure_logging(-1).level == logging.ERROR
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(2).level == logging.DEBUG
        assert configure_logging(7).level == logging.DEBUG

    def test_reconfiguring_does_not_stack_handlers(self):
        logger = configure_logging(0)
        configure_logging(1)
        configure_logging(2)
        assert len(_flagged_handlers(logger)) == 1

    def test_child_loggers_write_to_stream(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        logging.getLogger(f"{ROOT_LOGGER_NAME}.test").info("hello %d", 42)
        assert "repro.test: hello 42" in stream.getvalue()

    def test_quiet_suppresses_info(self):
        stream = io.StringIO()
        configure_logging(-1, stream=stream)
        logging.getLogger(f"{ROOT_LOGGER_NAME}.test").info("ignored")
        logging.getLogger(f"{ROOT_LOGGER_NAME}.test").error("kept")
        output = stream.getvalue()
        assert "ignored" not in output
        assert "kept" in output

    def test_no_propagation_to_root(self):
        configure_logging(1, stream=io.StringIO())
        assert logging.getLogger(ROOT_LOGGER_NAME).propagate is False


class TestTrainableLogging:
    def test_fit_logs_epochs_instead_of_printing(self, capsys):
        from repro.graphs.datasets import load_dataset
        from repro.models.trainable import TrainableGMN

        pairs = load_dataset("AIDS", seed=0, num_pairs=2)
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        model = TrainableGMN(input_dim=pairs[0].target.feature_dim)
        model.fit(pairs, epochs=2, verbose=True)
        assert capsys.readouterr().out == ""  # nothing printed to stdout
        assert "epoch 1: loss" in stream.getvalue()

    def test_fit_quiet_when_not_verbose(self):
        from repro.graphs.datasets import load_dataset
        from repro.models.trainable import TrainableGMN

        pairs = load_dataset("AIDS", seed=0, num_pairs=2)
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        model = TrainableGMN(input_dim=pairs[0].target.feature_dim)
        model.fit(pairs, epochs=1, verbose=False)
        assert "epoch" not in stream.getvalue()
