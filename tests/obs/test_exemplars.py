"""Tests for the tail exemplar buffer."""

import pytest

from repro.obs.exemplars import Exemplar, ExemplarBuffer


class TestExemplar:
    def test_dict_round_trip(self):
        exemplar = Exemplar(
            request_id=3,
            latency_seconds=0.25,
            status="ok",
            tree={"request_id": 3, "spans": []},
        )
        assert Exemplar.from_dict(exemplar.to_dict()) == exemplar


class TestSlowSet:
    def test_keeps_only_the_k_slowest(self):
        buffer = ExemplarBuffer(k_slowest=2)
        for request_id, latency in enumerate([0.1, 0.4, 0.2, 0.3]):
            buffer.offer(request_id, latency, "ok")
        assert [e.request_id for e in buffer.slowest()] == [1, 3]
        assert len(buffer) == 2

    def test_threshold_tracks_the_heap_root(self):
        buffer = ExemplarBuffer(k_slowest=2)
        assert buffer.threshold_seconds is None  # not yet full
        buffer.offer(1, 0.1, "ok")
        buffer.offer(2, 0.4, "ok")
        assert buffer.threshold_seconds == 0.1
        assert buffer.offer(3, 0.05, "ok") is False  # below the bar
        assert buffer.offer(4, 0.2, "ok") is True
        assert buffer.threshold_seconds == 0.2

    def test_ties_do_not_displace_incumbents(self):
        buffer = ExemplarBuffer(k_slowest=1)
        buffer.offer(1, 0.1, "ok")
        assert buffer.offer(2, 0.1, "ok") is False
        assert [e.request_id for e in buffer.slowest()] == [1]


class TestExpired:
    def test_every_expiration_is_kept(self):
        buffer = ExemplarBuffer(k_slowest=1)
        buffer.offer(1, 0.0, "expired")
        buffer.offer(2, 0.0, "expired")
        assert [e.request_id for e in buffer.expired()] == [1, 2]
        assert buffer.expired_seen == 2
        assert buffer.expired_dropped == 0

    def test_overflow_is_counted_not_silent(self):
        buffer = ExemplarBuffer(k_slowest=1, max_expired=1)
        assert buffer.offer(1, 0.0, "expired") is True
        assert buffer.offer(2, 0.0, "expired") is False
        assert buffer.expired_seen == 2
        assert buffer.expired_dropped == 1

    def test_expirations_never_enter_the_slow_set(self):
        buffer = ExemplarBuffer(k_slowest=4)
        buffer.offer(1, 9.0, "expired")
        assert buffer.slowest() == []


class TestSerialization:
    def test_as_dicts_orders_slowest_then_expired(self):
        buffer = ExemplarBuffer(k_slowest=2)
        buffer.offer(1, 0.2, "ok", tree={"request_id": 1, "spans": []})
        buffer.offer(2, 0.5, "ok")
        buffer.offer(3, 0.0, "expired")
        payloads = buffer.as_dicts()
        assert [p["request_id"] for p in payloads] == [2, 1, 3]
        assert payloads[1]["tree"] == {"request_id": 1, "spans": []}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ExemplarBuffer(k_slowest=0)
        with pytest.raises(ValueError):
            ExemplarBuffer(max_expired=0)
