"""Tests for the append-only benchmark history store."""

import json
from pathlib import Path

import pytest

from repro.obs.history import (
    HISTORY_ENTRY_KIND,
    HISTORY_SCHEMA_VERSION,
    BenchHistory,
    HistoryEntry,
    config_digest,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _bench_payload(name="unit", seconds=1.0, **config):
    """A minimal v2 BENCH_*.json payload."""
    return {
        "schema_version": 2,
        "name": name,
        "platform": {"python": "3.x", "machine": "test", "cpus": 1},
        "provenance": {
            "git_sha": "abc123def456",
            "created_at": "2026-08-08T00:00:00+00:00",
            "generator": "test",
        },
        "config": dict(config) or {"n": 4},
        "timings": {"slow": 2.0 * seconds, "fast": seconds},
        "samples": {
            "slow": [2.0 * seconds, 2.1 * seconds, 2.05 * seconds],
            "fast": [seconds, 1.01 * seconds, 0.99 * seconds],
        },
        "repeats": 3,
        "speedups": {"gain": 2.0},
        "checks": {"identical": True, "num_unique": 128},
    }


class TestConfigDigest:
    def test_stable_and_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_none_and_empty_agree(self):
        assert config_digest(None) == config_digest({})


class TestHistoryEntryRoundTrip:
    def test_to_from_dict_round_trips(self):
        entry = HistoryEntry.from_bench_report(_bench_payload())
        clone = HistoryEntry.from_dict(entry.to_dict())
        assert clone == entry
        assert clone.config_key == entry.config_key

    def test_dict_carries_schema_and_kind(self):
        payload = HistoryEntry.from_bench_report(_bench_payload()).to_dict()
        assert payload["schema_version"] == HISTORY_SCHEMA_VERSION
        assert payload["kind"] == HISTORY_ENTRY_KIND

    def test_unknown_schema_version_errors_with_upgrade_hint(self):
        payload = HistoryEntry.from_bench_report(_bench_payload()).to_dict()
        payload["schema_version"] = HISTORY_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="upgrade"):
            HistoryEntry.from_dict(payload)

    def test_wrong_kind_errors(self):
        payload = HistoryEntry.from_bench_report(_bench_payload()).to_dict()
        payload["kind"] = "something-else"
        with pytest.raises(ValueError, match="kind"):
            HistoryEntry.from_dict(payload)

    def test_missing_required_key_errors(self):
        payload = HistoryEntry.from_bench_report(_bench_payload()).to_dict()
        del payload["timings"]
        with pytest.raises(ValueError, match="timings"):
            HistoryEntry.from_dict(payload)

    def test_sample_values_fall_back_to_aggregate(self):
        entry = HistoryEntry.from_bench_report(_bench_payload())
        assert len(entry.sample_values("fast")) == 3
        legacy = HistoryEntry(
            bench="legacy", entry_id="x", timings={"only": 1.5}
        )
        assert legacy.sample_values("only") == [1.5]
        assert legacy.sample_values("absent") == []

    def test_ingesting_unknown_bench_schema_errors(self):
        payload = _bench_payload()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            HistoryEntry.from_bench_report(payload)

    def test_legacy_v1_payload_ingests_without_samples(self):
        payload = _bench_payload()
        del payload["schema_version"]
        del payload["samples"]
        del payload["repeats"]
        entry = HistoryEntry.from_bench_report(payload)
        assert entry.samples == {}
        assert entry.repeats is None
        assert entry.sample_values("fast") == [payload["timings"]["fast"]]


class TestBenchHistoryStore:
    def test_append_and_read_in_order(self, tmp_path):
        history = BenchHistory(tmp_path)
        first, appended = history.append(_bench_payload(seconds=1.0))
        assert appended
        second, appended = history.append(_bench_payload(seconds=1.3))
        assert appended
        entries = history.read("unit")
        assert [e.entry_id for e in entries] == [
            first.entry_id,
            second.entry_id,
        ]
        assert history.latest("unit").entry_id == second.entry_id
        assert history.benches() == ["unit"]

    def test_append_is_idempotent(self, tmp_path):
        history = BenchHistory(tmp_path)
        payload = _bench_payload()
        _, appended = history.append(payload)
        assert appended
        _, appended = history.append(payload)
        assert not appended
        assert len(history.read("unit")) == 1

    def test_invalid_bench_name_rejected(self, tmp_path):
        history = BenchHistory(tmp_path)
        for name in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="bench name"):
                history.path_for(name)

    def test_missing_file_reads_empty(self, tmp_path):
        history = BenchHistory(tmp_path)
        assert history.read("nothing") == []
        assert history.latest("nothing") is None
        assert history.benches() == []

    def test_truncated_line_skipped_and_counted(
        self, tmp_path, caplog, monkeypatch
    ):
        import logging

        # configure_logging (run by CLI tests) turns off propagation on
        # the "repro" logger; restore it so caplog sees the warning.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        history = BenchHistory(tmp_path)
        entry, _ = history.append(_bench_payload())
        path = history.path_for("unit")
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "kind": "repro-ben')
        with caplog.at_level("WARNING", logger="repro.obs.history"):
            entries = history.read("unit")
        assert [e.entry_id for e in entries] == [entry.entry_id]
        assert history.last_skipped == 1
        assert "truncated" in caplog.text

    def test_valid_line_with_newer_schema_still_raises(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_bench_payload())
        payload = history.read("unit")[0].to_dict()
        payload["schema_version"] = HISTORY_SCHEMA_VERSION + 1
        with open(history.path_for("unit"), "a") as handle:
            handle.write(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            history.read("unit")

    def test_record_file_ingests_bench_json(self, tmp_path):
        bench_file = tmp_path / "BENCH_unit.json"
        bench_file.write_text(json.dumps(_bench_payload()))
        history = BenchHistory(tmp_path / "hist")
        entry, appended = history.record_file(bench_file)
        assert appended
        assert entry.bench == "unit"
        _, appended = history.record_file(bench_file)
        assert not appended


class TestCommittedMigration:
    """The committed BENCH_*.json files and their migrated history."""

    @pytest.mark.parametrize("bench", ["emf", "harness", "search"])
    def test_committed_history_contains_bench_entry(self, bench):
        history = BenchHistory(REPO_ROOT / "results" / "obs" / "bench_history")
        entries = history.read(bench)
        assert entries, f"no migrated history for {bench}"
        assert all(entry.bench == bench for entry in entries)
        assert all(entry.git_sha != "unknown" for entry in entries)

    @pytest.mark.parametrize("bench", ["emf", "harness", "search"])
    def test_re_recording_committed_file_is_noop(self, bench, tmp_path):
        committed = BenchHistory(
            REPO_ROOT / "results" / "obs" / "bench_history"
        )
        source = REPO_ROOT / f"BENCH_{bench}.json"
        # Copy the committed store so the repo files are never written.
        scratch = BenchHistory(tmp_path)
        for entry in committed.read(bench):
            scratch.append(entry)
        before = len(scratch.read(bench))
        _, appended = scratch.record_file(source)
        assert not appended
        assert len(scratch.read(bench)) == before
