"""Tests for Prometheus exposition and the obs tail renderer."""

import json

import pytest

from repro.obs.export import (
    read_windows,
    render_exposition,
    render_window,
    split_metric_key,
    write_exposition,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Window


def _registry():
    registry = MetricsRegistry()
    registry.inc("search.serve.responses", 3, status="ok")
    registry.set_gauge("search.serve.queue_depth", 2)
    registry.observe("lat", 1.5, bounds=(1.0, 2.0, 4.0))
    registry.observe("lat", 3.0, bounds=(1.0, 2.0, 4.0))
    return registry


class TestSplitMetricKey:
    def test_plain_name(self):
        assert split_metric_key("sim.cycles") == ("sim.cycles", {})

    def test_labels_are_recovered(self):
        name, labels = split_metric_key("responses{a=1,status=ok}")
        assert name == "responses"
        assert labels == {"a": "1", "status": "ok"}


class TestExposition:
    def test_counter_gauge_histogram_families(self):
        text = render_exposition(_registry())
        assert '# TYPE repro_search_serve_responses counter' in text
        assert 'repro_search_serve_responses{status="ok"} 3.0' in text
        assert "repro_search_serve_queue_depth 2.0" in text
        # Buckets are cumulative, with the implicit +Inf terminator.
        assert 'repro_lat_bucket{le="1.0"} 0' in text
        assert 'repro_lat_bucket{le="2.0"} 1' in text
        assert 'repro_lat_bucket{le="4.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum 4.5" in text
        assert "repro_lat_count 2" in text

    def test_names_are_sanitized_to_prometheus_grammar(self):
        text = render_exposition(_registry())
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert all(c.isalnum() or c in "_:" for c in name), name

    def test_window_quantiles_exported_as_gauges(self):
        window = Window(
            index=4,
            start=0.0,
            end=2.0,
            histograms={"lat{stage=execute}": {
                "count": 2.0, "sum": 4.5, "mean": 2.25,
                "p50": 2.0, "p99": None,
            }},
        )
        text = render_exposition(_registry(), window=window)
        assert 'repro_window{field="index"} 4' in text
        assert (
            'repro_window_lat{quantile="0.5",stage="execute"} 2.0' in text
        )
        assert 'quantile="0.99"' not in text  # None fields are skipped

    def test_write_exposition_creates_parents(self, tmp_path):
        path = write_exposition(
            _registry(), tmp_path / "deep" / "serve.prom"
        )
        assert path.read_text().endswith("\n")


def _window_dict(index=0):
    return {
        "index": index,
        "start": 0.0,
        "end": 1.0,
        "counters": {"search.serve.admitted": 4.0},
        "rates": {"search.serve.admitted": 4.0},
        "gauges": {"search.serve.queue_depth": 0.0},
        "histograms": {
            "search.serve.latency_seconds": {
                "count": 4.0, "sum": 0.04, "mean": 0.01,
                "p50": 0.008, "p99": 0.016,
            }
        },
    }


class TestRenderWindow:
    def test_sections_render(self):
        text = render_window(Window.from_dict(_window_dict()))
        assert "window #0" in text
        assert "search.serve.admitted: 4 (4.00/s)" in text
        assert "search.serve.queue_depth = 0" in text
        assert "p50=8.000ms p99=16.000ms" in text

    def test_prefix_filters_and_fallback(self):
        window = Window.from_dict(_window_dict())
        text = render_window(window, prefix="sim.")
        assert "(no matching activity)" in text


class TestReadWindows:
    def test_run_report_v3_shape(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"windows": [_window_dict(i) for i in range(2)]}))
        windows = read_windows(path)
        assert [w.index for w in windows] == [0, 1]

    def test_jsonl_window_log(self, tmp_path):
        path = tmp_path / "windows.jsonl"
        path.write_text(
            "\n".join(json.dumps(_window_dict(i)) for i in range(3)) + "\n"
        )
        assert [w.index for w in read_windows(path)] == [0, 1, 2]

    def test_json_list_and_single_object(self, tmp_path):
        as_list = tmp_path / "list.json"
        as_list.write_text(json.dumps([_window_dict(5)]))
        assert [w.index for w in read_windows(as_list)] == [5]
        single = tmp_path / "one.json"
        single.write_text(json.dumps(_window_dict(7)))
        assert [w.index for w in read_windows(single)] == [7]

    def test_empty_file_is_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_windows(path) == []

    def test_garbage_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_windows(path)

    def test_truncated_trailing_line_is_skipped(
        self, tmp_path, caplog, monkeypatch
    ):
        # A writer that crashed mid-append leaves a partial last line;
        # the intact windows must still load. (configure_logging turns
        # off propagation on the "repro" logger; restore it so caplog
        # sees the warning regardless of test order.)
        import logging

        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        path = tmp_path / "windows.jsonl"
        intact = "\n".join(json.dumps(_window_dict(i)) for i in range(3))
        path.write_text(intact + "\n" + '{"index": 3, "start": 0.')
        with caplog.at_level("WARNING", logger="repro.obs.export"):
            windows = read_windows(path)
        assert [w.index for w in windows] == [0, 1, 2]
        assert "truncated" in caplog.text

    def test_all_lines_malformed_still_raises(self, tmp_path):
        path = tmp_path / "windows.jsonl"
        path.write_text('{"index": 0, "start"\n{"index": 1,\n')
        with pytest.raises(ValueError, match="malformed"):
            read_windows(path)
