"""Failure-injection and degenerate-input robustness tests.

The pipeline must behave sensibly — clean errors or graceful results,
never NaNs or hangs — on the pathological inputs a downstream user will
eventually feed it.
"""

import numpy as np
import pytest

from repro.cgc import SCHEDULERS
from repro.emf import MatchingPlan, elastic_matching_filter
from repro.graphs import Graph, GraphPair, GraphPairBatch
from repro.models import MODEL_NAMES, build_model, similarity_matrix
from repro.sim import AcceleratorSimulator, cegma_config
from repro.trace.profiler import BatchTrace, profile_pairs


def _singleton_pair():
    return GraphPair(Graph(1, []), Graph(1, []))


def _edgeless_pair(n=4):
    return GraphPair(Graph(n, []), Graph(n, []))


class TestDegenerateGraphs:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_single_node_pair(self, name):
        trace = build_model(name).forward_pair(_singleton_pair())
        assert np.isfinite(trace.score)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_edgeless_pair(self, name):
        trace = build_model(name).forward_pair(_edgeless_pair())
        assert np.isfinite(trace.score)

    def test_asymmetric_sizes(self):
        target = Graph.from_undirected_edges(2, [(0, 1)])
        query = Graph.from_undirected_edges(
            30, [(i, (i + 1) % 30) for i in range(30)]
        )
        trace = build_model("GMN-Li").forward_pair(GraphPair(target, query))
        assert np.isfinite(trace.score)
        assert trace.layers[0].num_matching_pairs == 60

    @pytest.mark.parametrize("scheme", sorted(SCHEDULERS))
    def test_schedulers_on_edgeless_pair(self, scheme):
        schedule = SCHEDULERS[scheme](_edgeless_pair(), capacity=4)
        assert schedule.total_matchings == 16
        assert schedule.total_edges == 0

    def test_simulator_on_singleton(self):
        pair = _singleton_pair()
        traces = profile_pairs(build_model("SimGNN"), [pair])
        batch = BatchTrace(GraphPairBatch([pair]), traces)
        result = AcceleratorSimulator(cegma_config()).simulate_batch(batch)
        assert result.cycles > 0
        assert np.isfinite(result.energy_joules)


class TestCorruptFeatures:
    def test_filter_handles_nan_features(self):
        """NaN features must not silently merge distinct nodes."""
        features = np.array([[np.nan, 1.0], [np.nan, 1.0], [2.0, 2.0]])
        result = elastic_matching_filter(features)
        # The two NaN rows carry identical bytes, so they may merge with
        # each other, but never with the finite row.
        assert result.representative(2) == 2

    def test_similarity_with_inf_features_does_not_crash(self):
        x = np.array([[np.inf, 1.0]])
        y = np.array([[1.0, 1.0]])
        s = similarity_matrix(x, y, "dot")
        assert s.shape == (1, 1)

    def test_plan_on_constant_features(self):
        x = np.zeros((5, 3))
        y = np.zeros((4, 3))
        plan = MatchingPlan.from_features(x, y)
        assert plan.unique_matchings == 1
        full = similarity_matrix(x, y, "dot")
        assert np.array_equal(plan.broadcast(plan.unique_similarity(full)), full)


class TestScaleExtremes:
    def test_tiny_buffer_still_covers_workload(self):
        pair = GraphPair(
            Graph.from_undirected_edges(8, [(i, (i + 1) % 8) for i in range(8)]),
            Graph.from_undirected_edges(8, [(i, (i + 1) % 8) for i in range(8)]),
        )
        schedule = SCHEDULERS["coordinated"](pair, capacity=2)
        assert schedule.total_matchings == 64

    def test_feature_dim_one(self):
        g = Graph.from_undirected_edges(
            5, [(0, 1), (1, 2), (2, 3), (3, 4)],
            np.arange(5, dtype=float).reshape(5, 1),
        )
        trace = build_model("GraphSim").forward_pair(GraphPair(g, g.copy()))
        assert np.isfinite(trace.score)

    def test_wide_features(self):
        rng = np.random.default_rng(0)
        result = elastic_matching_filter(rng.normal(size=(10, 512)))
        assert result.num_unique == 10
