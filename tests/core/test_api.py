"""Tests for the high-level public API."""

import numpy as np
import pytest

from repro import (
    DEFAULT_PLATFORMS,
    PLATFORM_BUILDERS,
    compare_platforms,
    filtered_similarity_matrix,
    similarity_matrix,
    simulate_traces,
    simulate_workload,
)
from repro.counters import FlopCounter
from repro.experiments.common import workload_traces


class TestFilteredSimilarity:
    @pytest.mark.parametrize("kind", ["dot", "cosine", "euclidean"])
    def test_lossless_on_exact_duplicates(self, kind):
        rng = np.random.default_rng(0)
        base_x, base_y = rng.normal(size=(5, 8)), rng.normal(size=(4, 8))
        x = base_x[rng.integers(0, 5, size=20)]
        y = base_y[rng.integers(0, 4, size=15)]
        dense = similarity_matrix(x, y, kind)
        filtered = filtered_similarity_matrix(x, y, kind)
        assert np.array_equal(dense, filtered)

    def test_flops_reduced(self):
        x = np.ones((50, 16))
        y = np.ones((40, 16))
        dense_flops, filtered_flops = FlopCounter(), FlopCounter()
        similarity_matrix(x, y, "dot", dense_flops)
        filtered_similarity_matrix(x, y, "dot", filtered_flops)
        assert filtered_flops.total < dense_flops.total / 100

    def test_no_duplicates_no_savings(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=(6, 4)), rng.normal(size=(5, 4))
        dense_flops, filtered_flops = FlopCounter(), FlopCounter()
        similarity_matrix(x, y, "dot", dense_flops)
        filtered = filtered_similarity_matrix(x, y, "dot", filtered_flops)
        assert filtered_flops.counts["match"] == dense_flops.counts["match"]
        assert np.array_equal(filtered, similarity_matrix(x, y, "dot"))


class TestSimulateWorkload:
    def test_default_platforms(self):
        results = simulate_workload(
            "SimGNN", "AIDS", num_pairs=2, batch_size=2
        )
        assert set(results) == set(DEFAULT_PLATFORMS)
        for result in results.values():
            assert result.num_pairs == 2

    def test_platform_subset(self):
        results = simulate_workload(
            "SimGNN", "AIDS", platforms=("CEGMA",), num_pairs=2, batch_size=2
        )
        assert set(results) == {"CEGMA"}

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            simulate_workload(
                "SimGNN", "AIDS", platforms=("TPU",), num_pairs=2, batch_size=2
            )

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            simulate_workload("GNN-X", "AIDS", num_pairs=2)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            simulate_workload("SimGNN", "IMDB", num_pairs=2)


class TestSimulateTraces:
    def test_shares_trace_across_platforms(self):
        traces = workload_traces("SimGNN", "AIDS", 2, 2, 0)
        results = simulate_traces(traces, ("CEGMA", "AWB-GCN"))
        assert results["CEGMA"].num_pairs == results["AWB-GCN"].num_pairs == 2

    def test_all_registered_platforms_buildable(self):
        for name, builder in PLATFORM_BUILDERS.items():
            simulator = builder()
            assert hasattr(simulator, "simulate_batches"), name


class TestComparePlatforms:
    def test_baseline_is_one(self):
        speedups = compare_platforms(
            "SimGNN", "AIDS", num_pairs=2, batch_size=2
        )
        assert speedups["PyG-CPU"] == pytest.approx(1.0)
        assert speedups["CEGMA"] > speedups["PyG-GPU"] > 1.0

    def test_custom_baseline(self):
        speedups = compare_platforms(
            "SimGNN",
            "AIDS",
            baseline="CEGMA",
            platforms=("CEGMA", "AWB-GCN"),
            num_pairs=2,
            batch_size=2,
        )
        assert speedups["CEGMA"] == pytest.approx(1.0)
        assert speedups["AWB-GCN"] < 1.0

    def test_baseline_must_be_simulated(self):
        with pytest.raises(KeyError):
            compare_platforms(
                "SimGNN",
                "AIDS",
                baseline="PyG-GPU",
                platforms=("CEGMA",),
                num_pairs=2,
                batch_size=2,
            )
