"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulate:
    def test_default_platforms(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "CEGMA" in out
        assert "PyG-CPU" in out

    def test_platform_subset(self, capsys):
        main(
            [
                "simulate",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--platforms",
                "CEGMA",
            ]
        )
        out = capsys.readouterr().out
        assert "CEGMA" in out
        assert "HyGCN" not in out

    def test_detailed_mode(self, capsys):
        main(
            [
                "simulate",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--platforms",
                "CEGMA",
                "--detailed",
            ]
        )
        assert "[detailed mode]" in capsys.readouterr().out

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "GNN-X", "--dataset", "AIDS"])


class TestProfileReplay:
    def test_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "traces.npz")
        assert (
            main(
                [
                    "profile",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                    "--output",
                    path,
                ]
            )
            == 0
        )
        assert "wrote 1 batch traces" in capsys.readouterr().out
        assert (
            main(["replay", "--input", path, "--platforms", "CEGMA"]) == 0
        )
        assert "replayed" in capsys.readouterr().out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiments", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestRenderSchedule:
    def test_step_table_printed(self, capsys):
        assert (
            main(
                [
                    "render-schedule",
                    "--dataset",
                    "AIDS",
                    "--scheme",
                    "joint",
                    "--capacity",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "input nodes" in out
        assert "joint" in out

    def test_matrix_flag(self, capsys):
        main(
            [
                "render-schedule",
                "--dataset",
                "AIDS",
                "--capacity",
                "6",
                "--matrix",
            ]
        )
        out = capsys.readouterr().out
        # Header row of the annotated adjacency matrix.
        assert " a " in out or " a\n" in out

    def test_plot_flag_on_experiments(self, capsys):
        main(["experiments", "fig08", "--plot"])
        out = capsys.readouterr().out
        assert "Window-scheme" in out


class TestDescribe:
    def test_profiled_workload(self, capsys):
        assert (
            main(
                [
                    "describe",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "match_flop_share" in out

    def test_from_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "t.npz")
        main(
            [
                "profile",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--output",
                path,
            ]
        )
        capsys.readouterr()
        assert main(["describe", "--input", path]) == 0
        assert "SimGNN" in capsys.readouterr().out


class TestCustomConfig:
    def test_config_file_adds_platform(self, tmp_path, capsys):
        import json

        from repro.sim import cegma_config

        payload = cegma_config().to_dict()
        payload["name"] = "MyChip"
        path = tmp_path / "chip.json"
        path.write_text(json.dumps(payload))
        main(
            [
                "simulate",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--platforms",
                "CEGMA",
                "--config",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert "MyChip" in out


class TestExperimentJsonOutput:
    def test_output_file_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "data.json"
        main(["experiments", "table3", "--output", str(path)])
        payload = json.loads(path.read_text())
        assert "table3" in payload
        assert abs(payload["table3"]["data"]["total_mm2"] - 6.3) < 0.5


class TestPlatformsCommand:
    def test_lists_registry(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("CEGMA", "AWB-GCN", "PyG-CPU"):
            assert name in out
        assert "bandwidth_gbps" in out

    def test_spec_string_platform(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                    "--platforms",
                    "CEGMA@bandwidth_gbps=512",
                ]
            )
            == 0
        )
        assert "CEGMA@bandwidth_gbps=512" in capsys.readouterr().out

    def test_unknown_platform_lists_known(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--platforms",
                    "NotAPlatform",
                ]
            )
        err = capsys.readouterr().err
        assert "NotAPlatform" in err
        assert "CEGMA" in err

    def test_bad_spec_override_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--platforms",
                    "CEGMA@warp_drive=1",
                ]
            )
        assert "warp_drive" in capsys.readouterr().err

    def test_save_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                    "--platforms",
                    "CEGMA",
                    "--save",
                ]
            )
            == 0
        )
        from repro.platforms import load_results

        artifacts = list((tmp_path / "results").glob("*.json"))
        assert len(artifacts) == 1
        results, spec = load_results(artifacts[0])
        assert "CEGMA" in results
        assert spec.model == "SimGNN"
        assert spec.num_pairs == 2


class TestServe:
    def test_quick_stream_fully_served(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "serve.json"
        assert (
            main(["serve", "--quick", "--json-out", str(out_path)]) == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "serve_report"
        stats = payload["stats"]
        assert stats["rejected_submissions"] == 0
        assert stats["served"] == payload["config"]["num_queries"]
        assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]
        out = capsys.readouterr().out
        assert "admitted" in out

    def test_policy_applies(self, tmp_path):
        import json

        out_path = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve",
                    "--quick",
                    "--policy",
                    "size_bucketed",
                    "--json-out",
                    str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["config"]["policy"] == "size_bucketed"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--policy", "bogus"])

    def test_json_out_carries_provenance(self, tmp_path):
        import json

        from repro.obs.provenance import read_stamp, validate_stamp

        out_path = tmp_path / "serve.json"
        assert (
            main(["serve", "--quick", "--json-out", str(out_path)]) == 0
        )
        payload = json.loads(out_path.read_text())
        stamp = read_stamp(payload)
        assert stamp is not None
        assert validate_stamp(stamp) == []
        assert stamp["generator"] == "repro serve"
        assert stamp["spec"] is not None


class TestServeTelemetry:
    def test_request_trace_prints_slowest_tree(self, capsys):
        assert main(["serve", "--quick", "--request-trace"]) == 0
        out = capsys.readouterr().out
        assert "slowest request" in out
        for stage in ("admission", "schedule", "execute", "rank"):
            assert f"- {stage}:" in out
        assert "tracked_requests" in out
        assert "dropped_spans" in out

    def test_windowed_run_produces_all_artifacts(
        self, tmp_path, monkeypatch, capsys
    ):
        import json

        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "serve",
                    "--quick",
                    "--request-trace",
                    "--window-seconds",
                    "0.05",
                    "--window-log",
                    "windows.jsonl",
                    "--expo",
                    "serve.prom",
                    "--metrics",
                ]
            )
            == 0
        )
        # The window log replays through obs tail.
        assert main(["obs", "tail", "windows.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "window #" in out
        assert "search.serve.admitted" in out
        # The exposition carries lifetime histograms and window gauges.
        expo = (tmp_path / "serve.prom").read_text()
        assert "# TYPE repro_search_serve_latency_seconds histogram" in expo
        assert 'repro_window{field="index"}' in expo
        # The RunReport is schema v3 with both telemetry sections.
        (report_path,) = (tmp_path / "results" / "obs").glob("*_report.json")
        payload = json.loads(report_path.read_text())
        assert payload["schema_version"] == 3
        assert payload["windows"]
        assert payload["exemplars"]
        assert main(["obs", "validate", str(report_path)]) == 0
        assert main(["obs", "tail", str(report_path)]) == 0

    def test_tail_prefix_filter_and_window_bound(self, tmp_path, capsys):
        import json

        log = tmp_path / "windows.jsonl"
        entries = [
            {
                "index": i,
                "start": float(i),
                "end": float(i + 1),
                "counters": {"search.serve.admitted": 2.0, "sim.macs": 9.0},
                "rates": {"search.serve.admitted": 2.0, "sim.macs": 9.0},
                "gauges": {},
                "histograms": {},
            }
            for i in range(4)
        ]
        log.write_text(
            "\n".join(json.dumps(entry) for entry in entries) + "\n"
        )
        assert (
            main(
                [
                    "obs",
                    "tail",
                    str(log),
                    "--windows",
                    "2",
                    "--prefix",
                    "search.serve.",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 older window(s) not shown" in out
        assert "window #2" in out and "window #3" in out
        assert "window #1" not in out
        assert "sim.macs" not in out

    def test_tail_missing_source_fails_but_empty_log_is_ok(
        self, tmp_path, capsys
    ):
        # An unreadable source is an error; an empty (zero-window) log
        # is a normal outcome of a short run and exits cleanly.
        assert main(["obs", "tail", str(tmp_path / "nope.jsonl")]) == 1
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "tail", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "no windows recorded" in out
