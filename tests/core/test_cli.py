"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulate:
    def test_default_platforms(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "CEGMA" in out
        assert "PyG-CPU" in out

    def test_platform_subset(self, capsys):
        main(
            [
                "simulate",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--platforms",
                "CEGMA",
            ]
        )
        out = capsys.readouterr().out
        assert "CEGMA" in out
        assert "HyGCN" not in out

    def test_detailed_mode(self, capsys):
        main(
            [
                "simulate",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--platforms",
                "CEGMA",
                "--detailed",
            ]
        )
        assert "[detailed mode]" in capsys.readouterr().out

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "GNN-X", "--dataset", "AIDS"])


class TestProfileReplay:
    def test_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "traces.npz")
        assert (
            main(
                [
                    "profile",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                    "--output",
                    path,
                ]
            )
            == 0
        )
        assert "wrote 1 batch traces" in capsys.readouterr().out
        assert (
            main(["replay", "--input", path, "--platforms", "CEGMA"]) == 0
        )
        assert "replayed" in capsys.readouterr().out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiments", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestRenderSchedule:
    def test_step_table_printed(self, capsys):
        assert (
            main(
                [
                    "render-schedule",
                    "--dataset",
                    "AIDS",
                    "--scheme",
                    "joint",
                    "--capacity",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "input nodes" in out
        assert "joint" in out

    def test_matrix_flag(self, capsys):
        main(
            [
                "render-schedule",
                "--dataset",
                "AIDS",
                "--capacity",
                "6",
                "--matrix",
            ]
        )
        out = capsys.readouterr().out
        # Header row of the annotated adjacency matrix.
        assert " a " in out or " a\n" in out

    def test_plot_flag_on_experiments(self, capsys):
        main(["experiments", "fig08", "--plot"])
        out = capsys.readouterr().out
        assert "Window-scheme" in out


class TestDescribe:
    def test_profiled_workload(self, capsys):
        assert (
            main(
                [
                    "describe",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "match_flop_share" in out

    def test_from_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "t.npz")
        main(
            [
                "profile",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--output",
                path,
            ]
        )
        capsys.readouterr()
        assert main(["describe", "--input", path]) == 0
        assert "SimGNN" in capsys.readouterr().out


class TestCustomConfig:
    def test_config_file_adds_platform(self, tmp_path, capsys):
        import json

        from repro.sim import cegma_config

        payload = cegma_config().to_dict()
        payload["name"] = "MyChip"
        path = tmp_path / "chip.json"
        path.write_text(json.dumps(payload))
        main(
            [
                "simulate",
                "--model",
                "SimGNN",
                "--dataset",
                "AIDS",
                "--pairs",
                "2",
                "--batch",
                "2",
                "--platforms",
                "CEGMA",
                "--config",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert "MyChip" in out


class TestExperimentJsonOutput:
    def test_output_file_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "data.json"
        main(["experiments", "table3", "--output", str(path)])
        payload = json.loads(path.read_text())
        assert "table3" in payload
        assert abs(payload["table3"]["data"]["total_mm2"] - 6.3) < 0.5


class TestPlatformsCommand:
    def test_lists_registry(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("CEGMA", "AWB-GCN", "PyG-CPU"):
            assert name in out
        assert "bandwidth_gbps" in out

    def test_spec_string_platform(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                    "--platforms",
                    "CEGMA@bandwidth_gbps=512",
                ]
            )
            == 0
        )
        assert "CEGMA@bandwidth_gbps=512" in capsys.readouterr().out

    def test_unknown_platform_lists_known(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--platforms",
                    "NotAPlatform",
                ]
            )
        err = capsys.readouterr().err
        assert "NotAPlatform" in err
        assert "CEGMA" in err

    def test_bad_spec_override_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--platforms",
                    "CEGMA@warp_drive=1",
                ]
            )
        assert "warp_drive" in capsys.readouterr().err

    def test_save_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "SimGNN",
                    "--dataset",
                    "AIDS",
                    "--pairs",
                    "2",
                    "--batch",
                    "2",
                    "--platforms",
                    "CEGMA",
                    "--save",
                ]
            )
            == 0
        )
        from repro.platforms import load_results

        artifacts = list((tmp_path / "results").glob("*.json"))
        assert len(artifacts) == 1
        results, spec = load_results(artifacts[0])
        assert "CEGMA" in results
        assert spec.model == "SimGNN"
        assert spec.num_pairs == 2


class TestServe:
    def test_quick_stream_fully_served(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "serve.json"
        assert (
            main(["serve", "--quick", "--json-out", str(out_path)]) == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "serve_report"
        stats = payload["stats"]
        assert stats["rejected_submissions"] == 0
        assert stats["served"] == payload["config"]["num_queries"]
        assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]
        out = capsys.readouterr().out
        assert "admitted" in out

    def test_policy_applies(self, tmp_path):
        import json

        out_path = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve",
                    "--quick",
                    "--policy",
                    "size_bucketed",
                    "--json-out",
                    str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["config"]["policy"] == "size_bucketed"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--policy", "bogus"])
