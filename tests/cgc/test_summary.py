"""Tests for the array-form schedule summaries behind the batched engine.

The fast builders must reproduce the serial schedulers *exactly* — the
serial path is the specification, and `ScheduleSummary.from_schedule`
of a real `WindowSchedule` is the ground truth they are compared to.
"""

import numpy as np
import pytest

from repro.cgc.summary import (
    ScheduleSummary,
    memoized_summaries,
    schedule_summary_for,
    summarize_coordinated,
    summarize_single,
    summary_key,
)
from repro.cgc.window import (
    coordinated_window_schedule,
    single_window_schedule,
)
from repro.graphs import Graph, GraphPair, erdos_renyi_graph


def paper_example_pair():
    target = Graph.from_undirected_edges(4, [(0, 2), (1, 2), (2, 3)])
    query = Graph.from_undirected_edges(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)]
    )
    return GraphPair(target, query)


def random_pair(seed, n_t=10, n_q=12, e_t=15, e_q=18):
    rng = np.random.default_rng(seed)
    return GraphPair(
        erdos_renyi_graph(n_t, e_t, rng), erdos_renyi_graph(n_q, e_q, rng)
    )


FAST_BUILDERS = {
    "single": (summarize_single, single_window_schedule),
    "coordinated": (summarize_coordinated, coordinated_window_schedule),
}


class TestExactness:
    """Fast builders == from_schedule(serial scheduler), bit for bit."""

    @pytest.mark.parametrize("scheme", sorted(FAST_BUILDERS))
    @pytest.mark.parametrize("capacity", [2, 4, 6, 32])
    def test_matches_serial_on_example(self, scheme, capacity):
        pair = paper_example_pair()
        fast, serial = FAST_BUILDERS[scheme]
        assert fast(pair, capacity) == ScheduleSummary.from_schedule(
            serial(pair, capacity)
        )

    @pytest.mark.parametrize("scheme", sorted(FAST_BUILDERS))
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_serial_on_random_pairs(self, scheme, seed):
        pair = random_pair(seed)
        fast, serial = FAST_BUILDERS[scheme]
        for capacity in (2, 5, 8):
            assert fast(pair, capacity) == ScheduleSummary.from_schedule(
                serial(pair, capacity)
            )

    @pytest.mark.parametrize("scheme", sorted(FAST_BUILDERS))
    def test_matches_serial_with_active_subsets(self, scheme):
        pair = random_pair(11)
        fast, serial = FAST_BUILDERS[scheme]
        actives = ([0, 2, 5], [1, 3])
        assert fast(pair, 4, *actives) == ScheduleSummary.from_schedule(
            serial(pair, 4, *actives)
        )

    @pytest.mark.parametrize("scheme", sorted(FAST_BUILDERS))
    def test_matches_serial_on_empty_active_side(self, scheme):
        # Regression: an empty active side used to crash the scheduler.
        pair = random_pair(5)
        fast, serial = FAST_BUILDERS[scheme]
        assert fast(pair, 4, [], [1]) == ScheduleSummary.from_schedule(
            serial(pair, 4, [], [1])
        )


class TestArrayRoundTrip:
    def test_to_from_array(self):
        summary = summarize_single(paper_example_pair(), 4)
        packed = summary.to_array()
        assert packed.shape == (5, summary.num_steps)
        assert packed.dtype == np.int64
        restored = ScheduleSummary.from_array("single", 4, packed)
        assert restored == summary

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(5, steps\)"):
            ScheduleSummary.from_array("single", 4, np.zeros((3, 7)))

    def test_totals_match_schedule(self):
        pair = paper_example_pair()
        schedule = coordinated_window_schedule(pair, 4)
        summary = ScheduleSummary.from_schedule(schedule)
        assert summary.total_matchings == schedule.total_matchings
        assert summary.total_edges == schedule.total_edges
        assert summary.total_misses == schedule.total_misses
        assert summary.num_steps == len(schedule.steps)


class TestSummaryKey:
    def test_wildcards_for_none(self):
        assert summary_key("single", 8, None, None) == "single|8|*|*"

    def test_actives_serialized(self):
        assert (
            summary_key("coordinated", 4, (0, 2), (1,))
            == "coordinated|4|0,2|1"
        )


class TestMemoAndStore:
    def test_memo_returns_same_object(self):
        pair = random_pair(21)
        first = schedule_summary_for(pair, "single", 4)
        second = schedule_summary_for(pair, "single", 4)
        assert first is second

    def test_memoized_summaries_snapshot(self):
        pair = random_pair(22)
        assert memoized_summaries(pair) == {}
        schedule_summary_for(pair, "coordinated", 4)
        snapshot = memoized_summaries(pair)
        assert list(snapshot) == [("coordinated", 4, None, None)]

    def test_store_consulted_before_building(self):
        pair = random_pair(23)
        canned = summarize_single(pair, 4)
        sentinel = ScheduleSummary.from_array(
            "single", 4, canned.to_array().copy()
        )
        store = {summary_key("single", 4, None, None): sentinel}
        result = schedule_summary_for(pair, "single", 4, store=store)
        assert result is sentinel

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError, match="unknown batched scheme"):
            schedule_summary_for(random_pair(1), "oracle-ish", 4)
