"""Tests for the four window-scheduling schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgc import (
    SCHEDULERS,
    coordinated_window_schedule,
    double_window_schedule,
    joint_window_schedule,
    single_window_schedule,
)
from repro.graphs import Graph, GraphPair, erdos_renyi_graph


def paper_example_pair():
    """The running example of Figs. 5/8/12: a 4-node target graph and a
    6-node query graph."""
    target = Graph.from_undirected_edges(4, [(0, 2), (1, 2), (2, 3)])
    query = Graph.from_undirected_edges(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)]
    )
    return GraphPair(target, query)


def random_pair(seed, n_t=10, n_q=12, e_t=15, e_q=18):
    rng = np.random.default_rng(seed)
    return GraphPair(
        erdos_renyi_graph(n_t, e_t, rng), erdos_renyi_graph(n_q, e_q, rng)
    )


ALL_SCHEMES = sorted(SCHEDULERS)
# Hypothesis sweeps skip the rollout-based oracle scheme (quadratic).
FAST_SCHEMES = sorted(set(SCHEDULERS) - {"oracle"})


class TestCoverage:
    """Every scheme must process all edges and all matchings exactly once."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_full_coverage_on_example(self, scheme):
        pair = paper_example_pair()
        schedule = SCHEDULERS[scheme](pair, capacity=4)
        assert schedule.total_matchings == 4 * 6
        assert schedule.total_edges == pair.target.num_edges + pair.query.num_edges

    @pytest.mark.parametrize("scheme", FAST_SCHEMES)
    @pytest.mark.parametrize("capacity", [2, 4, 6, 32])
    def test_full_coverage_random(self, scheme, capacity):
        pair = random_pair(7)
        schedule = SCHEDULERS[scheme](pair, capacity)
        assert schedule.total_matchings == pair.num_matching_pairs
        assert schedule.total_edges == pair.target.num_edges + pair.query.num_edges

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_window_capacity_respected(self, scheme):
        pair = random_pair(3)
        schedule = SCHEDULERS[scheme](pair, capacity=6)
        for step in schedule.steps:
            assert len(step.input_nodes) <= 6

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_capacity_validation(self, scheme):
        with pytest.raises(ValueError):
            SCHEDULERS[scheme](paper_example_pair(), capacity=1)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_coverage_all_schemes(self, seed):
        pair = random_pair(seed, n_t=6, n_q=8, e_t=8, e_q=10)
        for scheme in FAST_SCHEMES:
            schedule = SCHEDULERS[scheme](pair, capacity=4)
            assert schedule.total_matchings == pair.num_matching_pairs
            assert (
                schedule.total_edges
                == pair.target.num_edges + pair.query.num_edges
            )


class TestMissAccounting:
    def test_first_step_misses_everything(self):
        schedule = joint_window_schedule(paper_example_pair(), capacity=4)
        first = schedule.steps[0]
        assert first.misses == len(first.input_nodes)

    def test_stationary_side_not_recounted(self):
        """Joint window property (1): only one side changes per step, so
        per-step misses during the sweep are at most half the window."""
        schedule = joint_window_schedule(paper_example_pair(), capacity=4)
        sweep_steps = [s for s in schedule.steps[1:] if s.kind == "joint"]
        assert all(step.misses <= 2 for step in sweep_steps)

    def test_total_misses_lower_bounded_by_distinct_nodes(self):
        pair = paper_example_pair()
        for scheme in ALL_SCHEMES:
            schedule = SCHEDULERS[scheme](pair, capacity=4)
            assert schedule.total_misses >= pair.total_nodes

    def test_node_reference_stream_matches_steps(self):
        schedule = coordinated_window_schedule(paper_example_pair(), capacity=4)
        stream = schedule.node_reference_stream()
        assert len(stream) == sum(len(s.input_nodes) for s in schedule.steps)


class TestSchemeOrdering:
    """The paper's qualitative results: the baseline schemes are nearly
    tied (26 vs 25 misses on the worked example), while the joint and
    coordinated windows substantially reduce misses."""

    def test_example_ordering(self):
        pair = paper_example_pair()
        misses = {
            scheme: SCHEDULERS[scheme](pair, capacity=4).total_misses
            for scheme in ALL_SCHEMES
        }
        assert misses["coordinated"] <= misses["joint"]
        assert misses["joint"] < misses["single"]
        assert misses["joint"] < misses["double"]
        # single vs double are within a couple of misses of each other.
        assert abs(misses["single"] - misses["double"]) <= 3

    @given(seed=st.integers(0, 40))
    @settings(max_examples=12, deadline=None)
    def test_property_joint_beats_single(self, seed):
        pair = random_pair(seed, n_t=8, n_q=8, e_t=10, e_q=10)
        joint = joint_window_schedule(pair, capacity=4).total_misses
        single = single_window_schedule(pair, capacity=4).total_misses
        assert joint <= single

    def test_large_capacity_single_load_for_fused_schemes(self):
        """When the whole pair fits on-chip, the fused (joint and
        coordinated) schemes load each node exactly once. The staged
        baseline schemes reload for the matching stage even then — the
        inter-stage locality loss CEGMA removes."""
        pair = paper_example_pair()
        for scheme in ("joint", "coordinated"):
            schedule = SCHEDULERS[scheme](pair, capacity=64)
            assert schedule.total_misses == pair.total_nodes
        single = SCHEDULERS["single"](pair, capacity=64)
        assert single.total_misses > pair.total_nodes


class TestActiveSets:
    """EMF integration: matching restricted to unique nodes."""

    def test_matchings_reduced(self):
        pair = paper_example_pair()
        schedule = coordinated_window_schedule(
            pair, capacity=4, active_targets=[0, 2], active_queries=[0, 1, 3]
        )
        assert schedule.total_matchings == 2 * 3
        # All edges still processed (embedding is unaffected by EMF).
        assert schedule.total_edges == pair.target.num_edges + pair.query.num_edges

    def test_fewer_active_nodes_fewer_misses(self):
        pair = random_pair(11, n_t=16, n_q=16, e_t=20, e_q=20)
        full = coordinated_window_schedule(pair, capacity=8).total_misses
        filtered = coordinated_window_schedule(
            pair,
            capacity=8,
            active_targets=range(4),
            active_queries=range(4),
        ).total_misses
        assert filtered < full

    def test_empty_active_sides_still_process_edges(self):
        pair = paper_example_pair()
        schedule = single_window_schedule(
            pair, capacity=4, active_targets=[0], active_queries=[0]
        )
        assert schedule.total_matchings == 1
        assert schedule.total_edges == pair.target.num_edges + pair.query.num_edges


class TestCleanup:
    def test_cross_block_edges_land_in_cleanup(self):
        # A path graph with capacity 2 forces cross-block edges.
        target = Graph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        query = Graph.from_undirected_edges(2, [(0, 1)])
        pair = GraphPair(target, query)
        schedule = joint_window_schedule(pair, capacity=2)
        kinds = {step.kind for step in schedule.steps}
        assert "cleanup" in kinds
        assert schedule.total_edges == pair.target.num_edges + pair.query.num_edges

    def test_no_cleanup_when_everything_coresident(self):
        target = Graph.from_undirected_edges(2, [(0, 1)])
        query = Graph.from_undirected_edges(2, [(0, 1)])
        pair = GraphPair(target, query)
        schedule = joint_window_schedule(pair, capacity=4)
        assert all(step.kind != "cleanup" for step in schedule.steps)


class TestDegenerateInputs:
    """Regression tests for the degenerate-input contract.

    The double/coordinated/oracle schedulers used to raise IndexError on
    pairs with an empty side; now every scheme must either produce a
    valid schedule or raise a clear ValueError (capacity < 2 only).
    """

    def _assert_valid(self, pair, schedule, capacity):
        assert schedule.total_matchings == pair.num_matching_pairs
        assert (
            schedule.total_edges
            == pair.target.num_edges + pair.query.num_edges
        )
        for step in schedule.steps:
            assert len(step.input_nodes) <= capacity

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize(
        "n_t,edges_t,n_q,edges_q",
        [
            (4, [(0, 1)], 0, []),  # empty query
            (0, [], 4, [(0, 1)]),  # empty target
            (0, [], 0, []),  # both empty
            (1, [], 1, []),  # single nodes, no edges
            (5, [], 4, []),  # edgeless
        ],
    )
    def test_empty_and_edgeless_sides(self, scheme, n_t, edges_t, n_q, edges_q):
        pair = GraphPair(
            Graph.from_undirected_edges(n_t, edges_t),
            Graph.from_undirected_edges(n_q, edges_q),
        )
        schedule = SCHEDULERS[scheme](pair, capacity=4)
        self._assert_valid(pair, schedule, 4)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("capacity", [3, 5, 7])
    def test_odd_capacity_spare_slot_unused(self, scheme, capacity):
        # Odd capacities split as capacity // 2 per side; the spare slot
        # stays empty rather than unbalancing the documented schedule.
        pair = paper_example_pair()
        schedule = SCHEDULERS[scheme](pair, capacity)
        self._assert_valid(pair, schedule, capacity)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_graph_smaller_than_half_window(self, scheme):
        # A 2-node target under capacity 8 leaves half the window
        # underfilled; the schedule must stay valid, not pad or wrap.
        pair = GraphPair(
            Graph.from_undirected_edges(2, [(0, 1)]),
            Graph.from_undirected_edges(9, [(i, i + 1) for i in range(8)]),
        )
        schedule = SCHEDULERS[scheme](pair, capacity=8)
        self._assert_valid(pair, schedule, 8)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("capacity", [-3, 0, 1])
    def test_sub_two_capacity_raises_value_error(self, scheme, capacity):
        with pytest.raises(ValueError, match="at least 2"):
            SCHEDULERS[scheme](paper_example_pair(), capacity)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_empty_side_schedule_has_no_matchings(self, scheme):
        pair = GraphPair(
            Graph.from_undirected_edges(4, [(0, 1), (2, 3)]),
            Graph.from_undirected_edges(0, []),
        )
        schedule = SCHEDULERS[scheme](pair, capacity=4)
        assert schedule.total_matchings == 0
        assert all(step.num_matchings == 0 for step in schedule.steps)
        assert schedule.total_edges == pair.target.num_edges

    def test_oracle_decisions_empty_side(self):
        from repro.cgc.oracle import oracle_decisions

        pair = GraphPair(
            Graph.from_undirected_edges(3, [(0, 1)]),
            Graph.from_undirected_edges(0, []),
        )
        assert oracle_decisions(pair, capacity=4) == []
