"""Tests for batch-level scheduling (Fig. 15)."""

import pytest

from repro.cgc import batch_baseline_schedule, batch_coordinated_schedule
from repro.graphs import GraphPairBatch, load_dataset


@pytest.fixture(scope="module")
def batch():
    return GraphPairBatch(load_dataset("AIDS", seed=0, num_pairs=6))


class TestCoverage:
    def test_all_matchings_scheduled(self, batch):
        for scheduler in (batch_coordinated_schedule, batch_baseline_schedule):
            schedule = scheduler(batch, capacity=8)
            assert schedule.total_matchings == batch.num_matching_pairs

    def test_all_edges_scheduled(self, batch):
        for scheduler in (batch_coordinated_schedule, batch_baseline_schedule):
            schedule = scheduler(batch, capacity=8)
            assert schedule.total_edges == batch.num_intra_edges

    def test_global_ids_within_batch(self, batch):
        schedule = batch_coordinated_schedule(batch, capacity=8)
        nodes = set().union(*(step.input_nodes for step in schedule.steps))
        assert max(nodes) < batch.total_nodes
        assert len(nodes) == batch.total_nodes


class TestOrderingEffects:
    def test_coordinated_fewer_misses(self, batch):
        coordinated = batch_coordinated_schedule(batch, capacity=8)
        baseline = batch_baseline_schedule(batch, capacity=8)
        assert coordinated.total_misses < baseline.total_misses

    def test_baseline_is_stage_wise(self, batch):
        schedule = batch_baseline_schedule(batch, capacity=8)
        kinds = [step.kind for step in schedule.steps]
        last_embed = max(i for i, kind in enumerate(kinds) if kind == "embed")
        first_match = min(i for i, kind in enumerate(kinds) if kind == "match")
        assert last_embed < first_match

    def test_active_sets_reduce_matchings(self, batch):
        actives_t = [[0] for _ in batch.pairs]
        actives_q = [[0, 1] for _ in batch.pairs]
        schedule = batch_coordinated_schedule(
            batch, capacity=8, active_targets=actives_t, active_queries=actives_q
        )
        assert schedule.total_matchings == 2 * batch.batch_size
