"""Tests for the AOE lookahead oracle."""

import numpy as np

from repro.cgc import aoe_precision, oracle_decisions
from repro.graphs import GraphPair, erdos_renyi_graph, load_dataset


def _pair(seed=0, n=12, e=18):
    rng = np.random.default_rng(seed)
    return GraphPair(
        erdos_renyi_graph(n, e, rng), erdos_renyi_graph(n, e, rng)
    )


class TestOracleDecisions:
    def test_no_decisions_when_pair_fits(self):
        assert oracle_decisions(_pair(), capacity=64) == []

    def test_decisions_use_algorithm2_convention(self):
        decisions = oracle_decisions(_pair(n=16, e=30), capacity=4)
        assert decisions, "expected two-way decision points"
        for aoe, oracle in decisions:
            assert aoe in (0, 1)
            assert oracle in (0, 1)

    def test_deterministic(self):
        pair = _pair(seed=3, n=16, e=30)
        assert oracle_decisions(pair, 4) == oracle_decisions(pair, 4)


class TestAOEPrecision:
    def test_none_without_decision_points(self):
        assert aoe_precision(_pair(), capacity=64) is None

    def test_precision_in_unit_interval(self):
        precision = aoe_precision(_pair(n=16, e=30), capacity=4)
        assert precision is not None
        assert 0.0 <= precision <= 1.0

    def test_paper_claim_on_dataset_pairs(self):
        """Section V-C: ~90% agreement with the optimal decision."""
        pairs = load_dataset("GITHUB", seed=0, num_pairs=2)
        precisions = [aoe_precision(p, 32) for p in pairs]
        precisions = [p for p in precisions if p is not None]
        assert precisions
        assert float(np.mean(precisions)) > 0.75
