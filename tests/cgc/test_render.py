"""Tests for schedule rendering."""

import pytest

from repro.cgc import coordinated_window_schedule, single_window_schedule
from repro.cgc.render import node_name, schedule_summary, schedule_table
from repro.graphs import Graph, GraphPair


@pytest.fixture
def pair():
    target = Graph.from_undirected_edges(4, [(0, 2), (1, 2), (2, 3)])
    query = Graph.from_undirected_edges(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)]
    )
    return GraphPair(target, query)


class TestNodeNames:
    def test_target_nodes_numbered_from_one(self):
        assert node_name(0, 4) == "1"
        assert node_name(3, 4) == "4"

    def test_query_nodes_lettered(self):
        assert node_name(4, 4) == "a"
        assert node_name(9, 4) == "f"

    def test_large_query_suffixes(self):
        assert node_name(4 + 26, 4) == "a1"
        assert node_name(4 + 27, 4) == "b1"


class TestScheduleTable:
    def test_contains_paper_style_labels(self, pair):
        schedule = coordinated_window_schedule(pair, capacity=4)
        table = schedule_table(schedule, pair)
        assert "input nodes" in table
        assert "a,b" in table or "a" in table

    def test_raw_indices_without_pair(self, pair):
        schedule = coordinated_window_schedule(pair, capacity=4)
        table = schedule_table(schedule)
        assert "0" in table

    def test_total_misses_column_is_cumulative(self, pair):
        schedule = single_window_schedule(pair, capacity=4)
        table = schedule_table(schedule, pair)
        last_row = table.strip().splitlines()[-1]
        assert str(schedule.total_misses) in last_row

    def test_max_steps_truncation(self, pair):
        schedule = single_window_schedule(pair, capacity=4)
        table = schedule_table(schedule, pair, max_steps=2)
        assert "more steps" in table
        assert len(table.splitlines()) <= 6


class TestSummary:
    def test_one_line(self, pair):
        schedule = coordinated_window_schedule(pair, capacity=4)
        summary = schedule_summary(schedule)
        assert "\n" not in summary
        assert "coordinated" in summary
        assert str(schedule.total_misses) in summary


class TestStepMatrix:
    def test_every_edge_and_matching_labelled(self, pair):
        from repro.cgc import adjacency_step_matrix, coordinated_window_schedule

        schedule = coordinated_window_schedule(pair, capacity=4)
        grid = adjacency_step_matrix(schedule, pair)
        n_t = pair.target.num_nodes
        # Matching block: every (target, query) cell carries a step.
        for t in range(n_t):
            for q in range(pair.query.num_nodes):
                assert grid[1 + t][1 + n_t + q] != ""
        # Edge cells: each directed edge labelled exactly once.
        edge_cells = sum(
            1
            for u, v in zip(pair.target.src, pair.target.dst)
            if grid[1 + u][1 + v] != ""
        )
        assert edge_cells == pair.target.num_edges

    def test_step_indices_within_range(self, pair):
        from repro.cgc import adjacency_step_matrix, joint_window_schedule

        schedule = joint_window_schedule(pair, capacity=4)
        grid = adjacency_step_matrix(schedule, pair)
        labels = {
            cell
            for row in grid[1:]
            for cell in row[1:]
            if cell
        }
        assert all(1 <= int(cell) <= schedule.num_steps for cell in labels)

    def test_render_has_header(self, pair):
        from repro.cgc import coordinated_window_schedule, render_step_matrix

        text = render_step_matrix(
            coordinated_window_schedule(pair, capacity=4), pair
        )
        first_line = text.splitlines()[0]
        assert "a" in first_line and "1" in first_line
