"""Tests for the CGC decision-logic timing model."""

import pytest

from repro.cgc.hardware import CGCHardwareModel


class TestDecisionCycles:
    def test_zero_nodes_free(self):
        assert CGCHardwareModel().decision_cycles(0, 4.0) == 0

    def test_scales_with_window(self):
        model = CGCHardwareModel()
        small = model.decision_cycles(34, 4.0)
        large = model.decision_cycles(340, 4.0)
        assert large > small

    def test_scales_with_degree(self):
        model = CGCHardwareModel()
        sparse = model.decision_cycles(64, 2.0)
        dense = model.decision_cycles(64, 64.0)
        assert dense > sparse

    def test_validation(self):
        with pytest.raises(ValueError):
            CGCHardwareModel(counter_inputs=0)
        with pytest.raises(ValueError):
            CGCHardwareModel().decision_cycles(-1, 2.0)


class TestOverheadClaim:
    def test_decision_overlaps_with_step_compute(self):
        """A 512-node window step on CEGMA computes for thousands of
        cycles; the AOE decision costs tens — fully hidden."""
        model = CGCHardwareModel()
        # 256x256 matching window at 64 features on 4096 MACs.
        step_compute = 256 * 256 * 64 / 4096
        report = model.report(512, 4.0, step_compute)
        assert report["overlapped"] == 1.0
        assert report["decision_cycles"] < 100

    def test_per_layer_overhead_linear_in_decisions(self):
        model = CGCHardwareModel()
        one = model.per_layer_overhead(1, 512, 4.0)
        ten = model.per_layer_overhead(10, 512, 4.0)
        assert ten == 10 * one
