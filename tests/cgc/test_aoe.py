"""Tests for Approximate Outlier Estimation (Algorithm 2)."""

from repro.cgc import (
    SLIDE_COLUMN_WISE,
    SLIDE_ROW_WISE,
    approximate_outlier_estimation,
)


class TestAOE:
    def test_rows_hold_more_outliers_keeps_rows(self):
        # Row nodes have remaining degree 0 (two outliers); columns 5.
        assert (
            approximate_outlier_estimation([0, 0], [5, 5]) == SLIDE_COLUMN_WISE
        )

    def test_columns_hold_more_outliers_keeps_columns(self):
        assert (
            approximate_outlier_estimation([5, 5], [0, 0]) == SLIDE_ROW_WISE
        )

    def test_tie_prefers_row_wise(self):
        # n0 == n1 -> algorithm returns row-wise (the else branch).
        assert approximate_outlier_estimation([1, 2], [1, 2]) == SLIDE_ROW_WISE

    def test_threshold_resets_counter(self):
        # Column side introduces a new minimum late; earlier row outliers
        # at a higher threshold no longer count.
        assert (
            approximate_outlier_estimation([3, 3, 3], [1]) == SLIDE_ROW_WISE
        )

    def test_single_minimum_in_rows(self):
        assert (
            approximate_outlier_estimation([0, 9], [9, 9]) == SLIDE_COLUMN_WISE
        )

    def test_counts_at_threshold_accumulate(self):
        # Rows: two nodes at min 2; columns: one node at min 2 -> rows win.
        assert (
            approximate_outlier_estimation([2, 2, 7], [2, 8]) == SLIDE_COLUMN_WISE
        )

    def test_empty_sides(self):
        # Degenerate input: no nodes at all -> tie -> row-wise.
        assert approximate_outlier_estimation([], []) == SLIDE_ROW_WISE

    def test_empty_row_side(self):
        assert approximate_outlier_estimation([], [1]) == SLIDE_ROW_WISE

    def test_order_independence_within_side(self):
        a = approximate_outlier_estimation([3, 1, 2], [4, 1])
        b = approximate_outlier_estimation([1, 2, 3], [1, 4])
        assert a == b
