"""Tests for StageTimer and BenchReport edge cases."""

import pytest

from repro.perf.timing import BenchReport, StageTimer, time_stage


class TestStageTimer:
    def test_records_elapsed_and_calls(self):
        timer = StageTimer()
        with timer.stage("work"):
            pass
        with timer.stage("work"):
            pass
        assert timer.calls["work"] == 2
        assert timer.seconds["work"] >= 0
        assert timer.as_dict()["work"]["calls"] == 2

    def test_raising_stage_still_records(self):
        """A stage that raises must still record its elapsed time and
        call count — otherwise a crashed run's report undercounts."""
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("doomed"):
                raise RuntimeError("boom")
        assert timer.calls["doomed"] == 1
        assert timer.seconds["doomed"] >= 0
        assert timer.total_seconds == timer.seconds["doomed"]

    def test_time_stage_tolerates_none(self):
        with time_stage(None, "ignored"):
            pass

    def test_time_stage_raising_records(self):
        timer = StageTimer()
        with pytest.raises(ValueError):
            with time_stage(timer, "doomed"):
                raise ValueError("boom")
        assert timer.calls["doomed"] == 1

    def test_record_accumulates(self):
        timer = StageTimer()
        timer.record("stage", 1.0)
        timer.record("stage", 2.0)
        assert timer.seconds["stage"] == 3.0
        assert timer.calls["stage"] == 2


class TestBenchReportSpeedups:
    def test_speedup_from_recorded_timings(self):
        report = BenchReport("unit")
        report.add_timing("slow", 2.0)
        report.add_timing("fast", 1.0)
        report.add_speedup("x", "slow", "fast")
        assert report.speedups["x"] == 2.0

    def test_missing_variant_raises_with_names(self):
        report = BenchReport("unit")
        report.add_timing("slow", 2.0)
        with pytest.raises(ValueError) as excinfo:
            report.add_speedup("x", "slow", "never_timed")
        message = str(excinfo.value)
        assert "never_timed" in message
        assert "slow" in message  # lists what *was* recorded

    def test_both_variants_missing_are_named(self):
        report = BenchReport("unit")
        with pytest.raises(ValueError) as excinfo:
            report.add_speedup("x", "a", "b")
        assert "'a'" in str(excinfo.value)
        assert "'b'" in str(excinfo.value)

    def test_zero_fast_time_is_infinite(self):
        report = BenchReport("unit")
        report.add_timing("slow", 1.0)
        report.add_timing("fast", 0.0)
        report.add_speedup("x", "slow", "fast")
        assert report.speedups["x"] == float("inf")
