"""Tests for StageTimer and BenchReport edge cases."""

import pytest

from repro.perf.timing import BenchReport, StageTimer, time_stage


class TestStageTimer:
    def test_records_elapsed_and_calls(self):
        timer = StageTimer()
        with timer.stage("work"):
            pass
        with timer.stage("work"):
            pass
        assert timer.calls["work"] == 2
        assert timer.seconds["work"] >= 0
        assert timer.as_dict()["work"]["calls"] == 2

    def test_raising_stage_still_records(self):
        """A stage that raises must still record its elapsed time and
        call count — otherwise a crashed run's report undercounts."""
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("doomed"):
                raise RuntimeError("boom")
        assert timer.calls["doomed"] == 1
        assert timer.seconds["doomed"] >= 0
        assert timer.total_seconds == timer.seconds["doomed"]

    def test_time_stage_tolerates_none(self):
        with time_stage(None, "ignored"):
            pass

    def test_time_stage_raising_records(self):
        timer = StageTimer()
        with pytest.raises(ValueError):
            with time_stage(timer, "doomed"):
                raise ValueError("boom")
        assert timer.calls["doomed"] == 1

    def test_record_accumulates(self):
        timer = StageTimer()
        timer.record("stage", 1.0)
        timer.record("stage", 2.0)
        assert timer.seconds["stage"] == 3.0
        assert timer.calls["stage"] == 2


class TestBenchReportSpeedups:
    def test_speedup_from_recorded_timings(self):
        report = BenchReport("unit")
        report.add_timing("slow", 2.0)
        report.add_timing("fast", 1.0)
        report.add_speedup("x", "slow", "fast")
        assert report.speedups["x"] == 2.0

    def test_missing_variant_raises_with_names(self):
        report = BenchReport("unit")
        report.add_timing("slow", 2.0)
        with pytest.raises(ValueError) as excinfo:
            report.add_speedup("x", "slow", "never_timed")
        message = str(excinfo.value)
        assert "never_timed" in message
        assert "slow" in message  # lists what *was* recorded

    def test_both_variants_missing_are_named(self):
        report = BenchReport("unit")
        with pytest.raises(ValueError) as excinfo:
            report.add_speedup("x", "a", "b")
        assert "'a'" in str(excinfo.value)
        assert "'b'" in str(excinfo.value)

    def test_zero_fast_time_is_infinite(self):
        report = BenchReport("unit")
        report.add_timing("slow", 1.0)
        report.add_timing("fast", 0.0)
        report.add_speedup("x", "slow", "fast")
        assert report.speedups["x"] == float("inf")


class TestBenchReportSchemaV2:
    def _report(self):
        report = BenchReport("unit", config={"n": 4})
        report.add_timing("slow", 2.0, samples=[2.0, 2.1, 2.05])
        report.add_timing("fast", 1.0, samples=[1.0, 1.02, 0.98])
        report.repeats = 3
        report.add_speedup("gain", "slow", "fast")
        report.checks["identical"] = True
        return report

    def test_as_dict_carries_schema_samples_repeats(self):
        payload = self._report().as_dict()
        assert payload["schema_version"] == 2
        assert payload["samples"]["fast"] == [1.0, 1.02, 0.98]
        assert payload["repeats"] == 3
        assert "provenance" in payload and "platform" in payload

    def test_round_trip_preserves_samples_and_stamp(self):
        payload = self._report().as_dict()
        clone = BenchReport.from_dict(payload)
        assert clone.samples == payload["samples"]
        assert clone.repeats == 3
        assert clone.speedups["gain"] == 2.0
        # Re-serializing a loaded report keeps the original stamp
        # instead of minting a fresh one.
        assert clone.as_dict()["provenance"] == payload["provenance"]
        assert clone.as_dict()["platform"] == payload["platform"]

    def test_timing_without_samples_stays_sampleless(self):
        report = BenchReport("unit")
        report.add_timing("only", 1.5)
        assert report.samples == {}

    def test_legacy_v1_payload_loads_with_empty_samples(self):
        payload = self._report().as_dict()
        for key in ("schema_version", "samples", "repeats"):
            del payload[key]
        clone = BenchReport.from_dict(payload)
        assert clone.samples == {}
        assert clone.repeats is None
        assert clone.timings["fast"] == 1.0

    def test_unknown_newer_schema_rejected(self):
        payload = self._report().as_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="upgrade"):
            BenchReport.from_dict(payload)

    def test_non_bench_payload_rejected(self):
        with pytest.raises(ValueError, match="BENCH"):
            BenchReport.from_dict({"schema_version": 2, "other": 1})
        with pytest.raises(ValueError):
            BenchReport.from_dict("not a dict")
