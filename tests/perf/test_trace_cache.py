"""Tests for the persistent on-disk workload-trace cache."""

import numpy as np
import pytest

from repro.experiments.common import clear_workload_caches, workload_traces
from repro.perf.trace_cache import TraceCache, default_trace_cache
from repro.platforms import RunSpec
from repro.trace import io as trace_io


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_workload_caches()
    yield
    clear_workload_caches()


SPEC = RunSpec.make("GMN-Li", "AIDS", 2, 2, 0)


def _traces():
    return workload_traces("GMN-Li", "AIDS", 2, 2, 0)


class TestTraceCache:
    def test_miss_then_hit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        cache = default_trace_cache()
        assert cache.load(SPEC) is None
        traces = _traces()  # populates the disk cache
        loaded = cache.load(SPEC)
        assert loaded is not None
        assert len(loaded) == len(traces)

    def test_loaded_traces_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        profiled = _traces()
        clear_workload_caches()
        cached = _traces()  # second call replays from disk
        for batch_a, batch_b in zip(profiled, cached):
            for trace_a, trace_b in zip(
                batch_a.pair_traces, batch_b.pair_traces
            ):
                assert trace_a.score == trace_b.score
                assert trace_a.matching_usage == trace_b.matching_usage
                assert np.array_equal(
                    trace_a.head_features, trace_b.head_features
                )
                for layer_a, layer_b in zip(trace_a.layers, trace_b.layers):
                    assert np.array_equal(
                        layer_a.target_features, layer_b.target_features
                    )
                    assert np.array_equal(
                        layer_a.query_features, layer_b.query_features
                    )
                    assert layer_a.flops.counts == layer_b.flops.counts

    def test_key_separates_seed_and_size(self, tmp_path):
        cache = TraceCache(tmp_path)
        paths = {
            cache.key_path(SPEC),
            cache.key_path(RunSpec.make("GMN-Li", "AIDS", 2, 2, 1)),
            cache.key_path(RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)),
            cache.key_path(RunSpec.make("GMN-Li", "AIDS", 2, 4, 0)),
            cache.key_path(RunSpec.make("GMN-Li", "RD-B", 2, 2, 0)),
        }
        assert len(paths) == 5

    def test_key_embeds_format_version(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.key_path(SPEC)
        assert f"_v{trace_io.FORMAT_VERSION}_" in path.name

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.key_path(SPEC)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz file")
        assert cache.load(SPEC) is None

    def test_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        _traces()
        cache = default_trace_cache()
        assert cache.clear() >= 1
        assert cache.load(SPEC) is None

    @pytest.mark.parametrize("value", ["off", "0", ""])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_CACHE", value)
        assert default_trace_cache() is None

    def test_disabled_cache_still_profiles(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()
        assert traces
        assert not list(tmp_path.glob("*.npz"))


class TestTraceCacheCounters:
    def test_cold_store_warm_is_one_miss_one_store_one_hit(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.metrics import metrics_enabled

        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()  # profiled with the disk cache disabled
        cache = TraceCache(tmp_path)
        with metrics_enabled() as registry:
            assert cache.load(SPEC) is None  # cold load
            cache.store(SPEC, traces)
            assert cache.load(SPEC) is not None  # warm load
        assert registry.counter("trace_cache.miss") == 1
        assert registry.counter("trace_cache.store") == 1
        assert registry.counter("trace_cache.hit") == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        from repro.obs.metrics import metrics_enabled

        cache = TraceCache(tmp_path)
        path = cache.key_path(SPEC)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz file")
        with metrics_enabled() as registry:
            assert cache.load(SPEC) is None
        assert registry.counter("trace_cache.miss") == 1
        assert registry.counter("trace_cache.hit") == 0


class TestMmapEntries:
    def test_entries_stored_uncompressed(self, tmp_path, monkeypatch):
        import zipfile

        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()
        cache = TraceCache(tmp_path)
        cache.store(SPEC, traces)
        with zipfile.ZipFile(cache.key_path(SPEC)) as archive:
            assert archive.infolist()
            assert all(
                info.compress_type == zipfile.ZIP_STORED
                for info in archive.infolist()
            )

    def test_legacy_compressed_entry_still_loads(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()
        cache = TraceCache(tmp_path)
        trace_io.save_traces(traces, cache.key_path(SPEC), compressed=True)
        loaded = cache.load(SPEC)
        assert loaded is not None
        assert loaded[0].pair_traces[0].score == pytest.approx(
            traces[0].pair_traces[0].score
        )

    def test_load_store_timers_observed(self, tmp_path, monkeypatch):
        from repro.obs.metrics import metrics_enabled

        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()
        cache = TraceCache(tmp_path)
        with metrics_enabled() as registry:
            cache.store(SPEC, traces)
            assert cache.load(SPEC) is not None
        store_timer = registry.histogram("perf.trace_cache.store_seconds")
        load_timer = registry.histogram("perf.trace_cache.load_seconds")
        assert store_timer is not None and store_timer.count == 1
        assert load_timer is not None and load_timer.count == 1


class TestScheduleSidecar:
    PLATFORMS = ("CEGMA",)

    def _results(self):
        from repro.experiments.common import workload_results

        return workload_results("GMN-Li", "AIDS", self.PLATFORMS, 2, 2, 0)

    def test_profiled_only_traces_have_nothing_to_store(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()  # profiled, never simulated
        cache = TraceCache(tmp_path)
        assert cache.store_schedules(SPEC, traces) is None
        assert not cache.sidecar_path(SPEC).exists()

    def test_cold_run_writes_sidecar(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        self._results()
        cache = default_trace_cache()
        assert cache.sidecar_path(SPEC).is_file()

    def test_warm_run_attaches_sidecar_and_matches(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.metrics import metrics_enabled

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        cold = self._results()
        clear_workload_caches()
        with metrics_enabled() as registry:
            warm = self._results()
        assert registry.counter("trace_cache.sidecar_hit") == 1
        for platform in self.PLATFORMS:
            assert cold[platform].to_dict() == warm[platform].to_dict()

    def test_corrupt_sidecar_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        cold = self._results()
        cache = default_trace_cache()
        cache.sidecar_path(SPEC).write_bytes(b"not an npz file")
        clear_workload_caches()
        warm = self._results()
        for platform in self.PLATFORMS:
            assert cold[platform].to_dict() == warm[platform].to_dict()

    def test_clear_removes_sidecars(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        self._results()
        cache = default_trace_cache()
        assert cache.sidecar_path(SPEC).is_file()
        cache.clear()
        assert not cache.sidecar_path(SPEC).exists()


class TestHeadFeaturesRoundTrip:
    def test_save_load_head_features(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()
        path = tmp_path / "t.npz"
        trace_io.save_traces(traces, path)
        loaded = trace_io.load_traces(path)
        original = traces[0].pair_traces[0].head_features
        restored = loaded[0].pair_traces[0].head_features
        assert original is not None
        assert np.array_equal(original, restored)

    def test_v1_files_still_load(self, tmp_path, monkeypatch):
        """Entries written before the head-features field must load
        (with head_features=None), not error."""
        import json

        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        traces = _traces()
        path = tmp_path / "t.npz"
        trace_io.save_traces(traces, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        manifest = json.loads(str(arrays["manifest"]))
        manifest["version"] = 1
        for batch in manifest["batches"]:
            for pair in batch["pairs"]:
                del pair["has_head_features"]
        arrays = {
            key: value
            for key, value in arrays.items()
            if not key.endswith("head_features")
        }
        arrays["manifest"] = np.array(json.dumps(manifest))
        np.savez_compressed(path, **arrays)
        loaded = trace_io.load_traces(path)
        assert loaded[0].pair_traces[0].head_features is None
        assert loaded[0].pair_traces[0].score == pytest.approx(
            traces[0].pair_traces[0].score
        )


class TestStoreFailureSurfaced:
    """A failing cache store must be visible (log + counter), never a
    silent pass — regression test for the swallowed OSError."""

    def test_store_oserror_counted_and_logged(
        self, tmp_path, monkeypatch, caplog
    ):
        import logging

        from repro.obs.metrics import metrics_enabled

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))

        def failing_store(self, spec, traces):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(TraceCache, "store", failing_store)
        # configure_logging() (run by CLI tests) stops propagation at
        # the "repro" logger; restore it so caplog's root handler sees
        # the warning regardless of test order.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level(
            logging.WARNING, logger="repro.experiments.common"
        ):
            with metrics_enabled() as registry:
                traces = _traces()  # profiling still succeeds
        assert traces
        assert (
            registry.counter(
                "harness.trace_cache.store_errors", kind="OSError"
            )
            == 1
        )
        assert any(
            "trace cache store failed" in record.message
            for record in caplog.records
        )

    def test_store_failure_does_not_break_memo(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))

        def failing_store(self, spec, traces):
            raise OSError("disk full")

        monkeypatch.setattr(TraceCache, "store", failing_store)
        first = _traces()
        second = _traces()  # in-process memo still serves the workload
        assert first is second
