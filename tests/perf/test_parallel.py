"""Tests for the process-pool harness runner (serial-fallback paths run
everywhere; actual pools only engage on multi-core hosts)."""

import math

import pytest

from repro.core.api import simulate_workload
from repro.experiments.common import (
    clear_workload_caches,
    prewarm_workloads,
    workload_results,
)
from repro.perf.parallel import (
    _chunk_bounds,
    _merge_worker_telemetry,
    _telemetry_payload,
    available_workers,
    parallel_simulate_workload,
    parallel_workload_results,
)
from repro.platforms import RunSpec

PLATFORMS = ("PyG-CPU", "CEGMA")


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    clear_workload_caches()
    yield
    clear_workload_caches()


class TestAvailableWorkers:
    def test_defaults_to_cpu_count(self):
        import os

        assert available_workers() == (os.cpu_count() or 1)

    def test_clamped_to_cores_and_floor_of_one(self):
        import os

        cores = os.cpu_count() or 1
        assert available_workers(10_000) == cores
        assert available_workers(0) == 1
        assert available_workers(-3) == 1


class TestChunkBounds:
    def test_batch_aligned(self):
        for num_pairs, batch, workers in [
            (6, 2, 3),
            (7, 2, 2),
            (8, 4, 16),
            (1, 4, 2),
            (64, 8, 3),
        ]:
            bounds = _chunk_bounds(num_pairs, batch, workers)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == num_pairs
            for (_, stop_a), (start_b, _) in zip(bounds, bounds[1:]):
                assert stop_a == start_b
            # Every boundary except the last lands on a batch edge, so a
            # chunked run forms exactly the same batches as a serial run.
            for start, _ in bounds:
                assert start % batch == 0

    def test_single_chunk_when_one_worker(self):
        assert _chunk_bounds(64, 8, 1) == [(0, 64)]

    def test_zero_items_yields_no_chunks(self):
        # Regression: used to divide by a zero stride / emit (0, 0).
        assert _chunk_bounds(0, 4, 8) == []
        assert _chunk_bounds(-1, 4, 2) == []

    def test_chunk_size_larger_than_items(self):
        assert _chunk_bounds(3, 8, 4) == [(0, 3)]

    def test_batch_size_one(self):
        assert _chunk_bounds(4, 1, 2) == [(0, 2), (2, 4)]


class TestParallelSimulateWorkload:
    def test_matches_serial(self):
        serial = simulate_workload(
            "GMN-Li", "AIDS", PLATFORMS, num_pairs=4, batch_size=2, seed=0
        )
        chunked = parallel_simulate_workload(
            RunSpec.make("GMN-Li", "AIDS", 4, 2, 0),
            PLATFORMS,
            workers=2,
        )
        assert set(serial) == set(chunked)
        for platform in serial:
            assert serial[platform].cycles == chunked[platform].cycles
            assert serial[platform].num_pairs == chunked[platform].num_pairs
            assert math.isclose(
                serial[platform].energy_joules,
                chunked[platform].energy_joules,
                rel_tol=1e-9,
            )

    def test_jobs_parameter_on_api(self):
        serial = simulate_workload(
            "SimGNN", "AIDS", PLATFORMS, num_pairs=4, batch_size=2, seed=0
        )
        jobs = simulate_workload(
            "SimGNN",
            "AIDS",
            PLATFORMS,
            num_pairs=4,
            batch_size=2,
            seed=0,
            jobs=2,
        )
        for platform in serial:
            assert serial[platform].cycles == jobs[platform].cycles


class TestWorkerDeathFallback:
    """A worker dying mid-task (OOM kill, hard crash) surfaces from
    ``pool.map`` as BrokenExecutor after partial progress; the fallback
    must re-run the whole task list serially so results AND the merged
    metrics registry stay complete."""

    class _DyingPool:
        """Stands in for ProcessPoolExecutor; dies partway into map()."""

        def __init__(self, max_workers=None):
            self.max_workers = max_workers

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, tasks):
            from concurrent.futures.process import BrokenProcessPool

            def _gen():
                tasks_list = list(tasks)
                # First task completes, then the worker is "killed".
                yield fn(tasks_list[0])
                raise BrokenProcessPool(
                    "a child process terminated abruptly"
                )

            return _gen()

    @pytest.fixture
    def _dying_pool(self, monkeypatch):
        from repro.perf import parallel

        monkeypatch.setattr(
            parallel, "ProcessPoolExecutor", self._DyingPool
        )
        # Bypass the CPU-count clamp so the pool path engages even on
        # single-core CI hosts — the pool itself is the fake above.
        monkeypatch.setattr(
            parallel,
            "available_workers",
            lambda requested=None: requested or 2,
        )

    def test_results_complete_after_worker_death(self, _dying_pool):
        workloads = [("GMN-Li", "AIDS"), ("SimGNN", "AIDS")]
        fanned = parallel_workload_results(
            workloads, PLATFORMS, 2, 2, seed=0, workers=2
        )
        assert set(fanned) == set(workloads)
        for model, dataset in workloads:
            direct = workload_results(model, dataset, PLATFORMS, 2, 2, 0)
            for platform in PLATFORMS:
                assert (
                    fanned[(model, dataset)][platform].cycles
                    == direct[platform].cycles
                )

    def test_merged_registry_complete_and_failure_counted(self, _dying_pool):
        from repro.obs.metrics import metrics_enabled

        spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)
        with metrics_enabled() as registry:
            merged = parallel_simulate_workload(spec, PLATFORMS, workers=2)
        serial = simulate_workload(
            "GMN-Li", "AIDS", PLATFORMS, num_pairs=4, batch_size=2, seed=0
        )
        for platform in PLATFORMS:
            assert merged[platform].cycles == serial[platform].cycles
        # The fallback is visible: one counted failure, and the
        # simulator counters cover the full workload, not just the chunk
        # that finished before the pool broke.
        assert (
            registry.counter(
                "perf.parallel.worker_failures", kind="BrokenProcessPool"
            )
            == 1
        )
        assert (
            registry.counter("sim.pairs", platform="CEGMA") == spec.num_pairs
        )

    def test_fallback_logs_a_warning(self, _dying_pool, caplog, monkeypatch):
        import logging

        # configure_logging (run by CLI tests elsewhere in the suite)
        # stops repro.* records at its own handler; let them reach
        # caplog's root handler for this test.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level(logging.WARNING, logger="repro.perf.parallel"):
            parallel_simulate_workload(
                RunSpec.make("GMN-Li", "AIDS", 4, 2, 0),
                PLATFORMS,
                workers=2,
            )
        assert any(
            "BrokenProcessPool" in record.getMessage()
            for record in caplog.records
        )


class TestSharedMemoryTransport:
    def test_shm_chunks_match_serial(self):
        from repro.perf.parallel import _shm_map_chunks

        spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)
        bounds = _chunk_bounds(spec.num_pairs, spec.batch_size, 2)
        assert len(bounds) == 2
        # workers=1 keeps the tasks in-process, so this exercises the
        # full publish → attach → zero-copy rebuild path without a pool.
        chunks = _shm_map_chunks(spec, PLATFORMS, bounds, 1, False)
        assert chunks is not None
        serial = simulate_workload(
            "GMN-Li", "AIDS", PLATFORMS, num_pairs=4, batch_size=2, seed=0
        )
        chunks.sort(key=lambda item: item[0])
        merged = {}
        for _, results, _ in chunks:
            for platform, result in results.items():
                if platform in merged:
                    merged[platform].merge(result)
                else:
                    merged[platform] = result
        for platform in PLATFORMS:
            assert merged[platform].cycles == serial[platform].cycles
            assert merged[platform].num_pairs == serial[platform].num_pairs

    def test_segment_failure_falls_back_and_is_counted(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.obs.metrics import metrics_enabled
        from repro.perf import parallel

        def _refuse(*args, **kwargs):
            raise OSError("no shared memory on this host")

        monkeypatch.setattr(shared_memory, "SharedMemory", _refuse)
        monkeypatch.setattr(
            parallel, "available_workers", lambda requested=None: requested or 2
        )
        spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)
        with metrics_enabled() as registry:
            results = parallel_simulate_workload(spec, PLATFORMS, workers=2)
        serial = simulate_workload(
            "GMN-Li", "AIDS", PLATFORMS, num_pairs=4, batch_size=2, seed=0
        )
        for platform in PLATFORMS:
            assert results[platform].cycles == serial[platform].cycles
        assert (
            registry.counter("perf.parallel.shm_failures", kind="OSError") == 1
        )
        assert registry.gauge("perf.parallel.workers") == 2


class TestWorkerTelemetryTransport:
    """The shared worker→parent telemetry contract (both shapes)."""

    def _worker_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("sim.macs", 7)
        registry.observe("lat", 0.002, bounds=(0.001, 0.004, 0.016))
        return registry

    def test_payload_without_tracker_is_metrics_only(self):
        payload = _telemetry_payload(self._worker_registry())
        assert set(payload) == {"metrics"}
        assert payload["metrics"]["counters"]["sim.macs"] == 7

    def test_payload_ships_spans_when_tracked(self):
        from repro.obs.context import RequestTracker

        tracker = RequestTracker()
        tracker.record(
            3, "execute.shard", start=0.0, duration_seconds=0.1,
            parent="execute",
        )
        payload = _telemetry_payload(self._worker_registry(), tracker)
        assert [s["request_id"] for s in payload["spans"]] == [3]
        # An empty tracker adds no spans key — keeps the pipe payload
        # identical to the metrics-only contract.
        empty = _telemetry_payload(
            self._worker_registry(), RequestTracker()
        )
        assert "spans" not in empty

    def test_merge_accepts_combined_shape(self):
        from repro.obs.metrics import metrics_enabled

        payload = _telemetry_payload(self._worker_registry())
        payload["spans"] = [
            {
                "request_id": 1,
                "stage": "execute.shard",
                "start": 0.0,
                "duration_seconds": 0.1,
            }
        ]
        with metrics_enabled() as registry:
            spans = _merge_worker_telemetry(payload)
        assert [s["request_id"] for s in spans] == [1]
        assert registry.counter("sim.macs") == 7
        merged = registry.histogram("lat")
        assert merged.bounds == (0.001, 0.004, 0.016)
        assert merged.count == 1

    def test_merge_accepts_legacy_bare_shape(self):
        from repro.obs.metrics import metrics_enabled

        with metrics_enabled() as registry:
            spans = _merge_worker_telemetry(
                self._worker_registry().as_dict()
            )
        assert spans == []
        assert registry.counter("sim.macs") == 7

    def test_merge_of_none_is_a_noop(self):
        assert _merge_worker_telemetry(None) == []

    def test_merge_without_active_registry_still_returns_spans(self):
        payload = _telemetry_payload(self._worker_registry())
        payload["spans"] = [
            {
                "request_id": 2,
                "stage": "execute.shard",
                "start": 0.0,
                "duration_seconds": 0.1,
            }
        ]
        spans = _merge_worker_telemetry(payload)
        assert [s["request_id"] for s in spans] == [2]


class TestParallelWorkloadResults:
    def test_matches_direct_results(self):
        workloads = [("GMN-Li", "AIDS"), ("SimGNN", "AIDS")]
        fanned = parallel_workload_results(
            workloads, PLATFORMS, 2, 2, seed=0, workers=2
        )
        assert set(fanned) == set(workloads)
        for model, dataset in workloads:
            direct = workload_results(model, dataset, PLATFORMS, 2, 2, 0)
            for platform in PLATFORMS:
                assert (
                    fanned[(model, dataset)][platform].cycles
                    == direct[platform].cycles
                )

    def test_prewarm_primes_memo(self):
        prewarm_workloads(
            [("GMN-Li", "AIDS")], PLATFORMS, 2, 2, seed=0, workers=1
        )
        import time

        start = time.perf_counter()
        workload_results("GMN-Li", "AIDS", PLATFORMS, 2, 2, 0)
        assert time.perf_counter() - start < 0.05  # memo hit, no profiling
