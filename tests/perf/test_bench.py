"""Tests for the timing utilities and the microbenchmark driver."""

import json

import pytest

from repro.perf.timing import BenchReport, StageTimer, time_stage


class TestStageTimer:
    def test_accumulates_seconds_and_calls(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("work"):
                pass
        assert timer.calls["work"] == 3
        assert timer.seconds["work"] >= 0.0
        assert timer.total_seconds == sum(timer.seconds.values())

    def test_record_direct(self):
        timer = StageTimer()
        timer.record("io", 1.5)
        timer.record("io", 0.5)
        assert timer.seconds["io"] == 2.0
        assert timer.calls["io"] == 2

    def test_time_stage_tolerates_none(self):
        with time_stage(None, "anything"):
            pass
        timer = StageTimer()
        with time_stage(timer, "real"):
            pass
        assert timer.calls["real"] == 1


class TestBenchReport:
    def test_write_layout(self, tmp_path):
        report = BenchReport("unit", config={"n": 4})
        report.add_timing("slow", 2.0)
        report.add_timing("fast", 0.5)
        report.add_speedup("gain", "slow", "fast")
        report.checks["ok"] = True
        path = report.write(tmp_path)
        assert path.name == "BENCH_unit.json"
        data = json.loads(path.read_text())
        assert data["speedups"]["gain"] == 4.0
        assert data["checks"]["ok"] is True
        assert data["config"]["n"] == 4
        assert data["platform"]["cpus"] >= 1

    def test_zero_time_speedup_is_inf(self):
        report = BenchReport("unit")
        report.add_timing("slow", 1.0)
        report.add_timing("fast", 0.0)
        report.add_speedup("gain", "slow", "fast")
        assert report.speedups["gain"] == float("inf")


class TestBenchEMF:
    def test_quick_run_confirms_equivalence_and_speedup(self):
        from repro.perf.bench import bench_emf

        report = bench_emf(quick=True, repeats=1)
        assert report.checks["tags_identical"]
        assert report.checks["record_sets_identical"]
        assert report.checks["tag_maps_identical"]
        # The acceptance bar is 5x; quick mode clears it with margin.
        assert report.speedups["emf_hashing"] > 5.0
        assert report.speedups["emf_filter"] > 5.0


@pytest.mark.slow
class TestBenchHarness:
    def test_quick_harness_speedup(self, tmp_path):
        from repro.perf.bench import bench_harness

        report = bench_harness(quick=True)
        assert report.checks["cold_matches_uncached"]
        assert report.checks["warm_matches_uncached"]
        assert report.speedups["harness_quick"] > 1.0
        path = report.write(tmp_path)
        assert json.loads(path.read_text())["name"] == "harness"


class TestBenchHistoryIntegration:
    def test_main_appends_history_entry(self, tmp_path, monkeypatch):
        from repro.obs.history import BenchHistory
        from repro.perf.bench import main

        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        history_dir = tmp_path / "hist"
        status = main(
            [
                "--quick",
                "--only",
                "emf",
                "--repeats",
                "1",
                "--output-dir",
                str(tmp_path),
                "--history-dir",
                str(history_dir),
            ]
        )
        assert status == 0
        history = BenchHistory(history_dir)
        entries = history.read("emf")
        assert len(entries) == 1
        assert entries[0].samples  # raw repeats retained
        assert entries[0].repeats == 1

    def test_no_history_flag_disables_recording(self, tmp_path, monkeypatch):
        from repro.perf.bench import main

        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "envhist"))
        status = main(
            [
                "--quick",
                "--only",
                "emf",
                "--repeats",
                "1",
                "--output-dir",
                str(tmp_path),
                "--no-history",
            ]
        )
        assert status == 0
        assert not (tmp_path / "envhist").exists()

    def test_env_off_disables_recording(self, tmp_path, monkeypatch):
        from repro.perf.bench import _resolve_history

        monkeypatch.setenv("REPRO_BENCH_HISTORY", "off")
        assert _resolve_history(None, False) is None
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "h"))
        history = _resolve_history(None, False)
        assert history is not None
        assert str(history.root) == str(tmp_path / "h")
        # --history-dir wins over the env var.
        history = _resolve_history(str(tmp_path / "cli"), False)
        assert str(history.root) == str(tmp_path / "cli")
