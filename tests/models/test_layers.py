"""Unit tests for numpy neural-network layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters import FlopCounter
from repro.models import MLP, Conv2D, GCNLayer, Linear, NeuralTensorNetwork, relu, sigmoid
from repro.graphs import Graph


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestFlopCounter:
    def test_starts_at_zero(self):
        assert FlopCounter().total == 0

    def test_add_and_total(self):
        c = FlopCounter()
        c.add("match", 10)
        c.add("aggregate", 5)
        assert c.total == 15
        assert c.counts["match"] == 10

    def test_fraction(self):
        c = FlopCounter()
        c.add("match", 30)
        c.add("combine", 70)
        assert c.fraction("match") == pytest.approx(0.3)

    def test_fraction_of_empty_counter(self):
        assert FlopCounter().fraction("match") == 0.0

    def test_unknown_phase_rejected(self):
        with pytest.raises(KeyError):
            FlopCounter().add("mystery", 1)

    def test_merged_is_non_destructive(self):
        a, b = FlopCounter(), FlopCounter()
        a.add("match", 1)
        b.add("match", 2)
        merged = a.merged(b)
        assert merged.counts["match"] == 3
        assert a.counts["match"] == 1


class TestActivations:
    def test_relu_clamps_negatives(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-6)

    def test_sigmoid_no_overflow(self):
        assert np.all(np.isfinite(sigmoid(np.array([-1e9, 1e9]))))


class TestLinear:
    def test_shape(self):
        layer = Linear(4, 8, _rng())
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 8)

    def test_wrong_input_dim_rejected(self):
        layer = Linear(4, 8, _rng())
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 3)))

    def test_flops_counted(self):
        layer = Linear(4, 8, _rng())
        flops = FlopCounter()
        layer.forward(np.zeros((5, 4)), flops, phase="combine")
        assert flops.counts["combine"] == 2 * 5 * 4 * 8

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 3, _rng())

    def test_deterministic_given_seed(self):
        a = Linear(4, 4, _rng(7)).weight
        b = Linear(4, 4, _rng(7)).weight
        assert np.array_equal(a, b)


class TestMLP:
    def test_shapes_through_stack(self):
        mlp = MLP([6, 12, 3], _rng())
        assert mlp.forward(np.zeros((2, 6))).shape == (2, 3)
        assert mlp.in_dim == 6
        assert mlp.out_dim == 3

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([5], _rng())

    def test_no_activation_after_last_layer(self):
        # With a negative bias forced on the output layer, outputs can go
        # negative -- proving no trailing ReLU.
        mlp = MLP([2, 2], _rng())
        mlp.layers[-1].bias[:] = -100.0
        out = mlp.forward(np.zeros((1, 2)))
        assert np.all(out < 0)

    @given(batch=st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_property_batch_independence(self, batch):
        mlp = MLP([3, 5, 2], _rng(1))
        x = np.arange(batch * 3, dtype=float).reshape(batch, 3)
        full = mlp.forward(x)
        rows = np.vstack([mlp.forward(x[i : i + 1]) for i in range(batch)])
        assert np.allclose(full, rows)


class TestGCNLayer:
    def test_shape_and_flops(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        layer = GCNLayer(3, 5, _rng())
        flops = FlopCounter()
        out = layer.forward(
            g.normalized_adjacency(), np.ones((4, 3)), g.num_edges, flops
        )
        assert out.shape == (4, 5)
        assert flops.counts["aggregate"] == 2 * (6 + 4) * 3
        assert flops.counts["combine"] == 2 * 4 * 3 * 5

    def test_isomorphic_nodes_get_equal_features(self):
        # Path graph 0-1-2: endpoints 0 and 2 are symmetric.
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 2)])
        layer = GCNLayer(1, 8, _rng())
        out = layer.forward(g.normalized_adjacency(), np.ones((3, 1)), g.num_edges)
        assert np.allclose(out[0], out[2])
        assert not np.allclose(out[0], out[1])


class TestNTN:
    def test_output_slices(self):
        ntn = NeuralTensorNetwork(8, 4, _rng())
        out = ntn.forward(np.ones(8), np.ones(8))
        assert out.shape == (4,)
        assert np.all(out >= 0)  # ReLU output

    def test_shape_validation(self):
        ntn = NeuralTensorNetwork(8, 4, _rng())
        with pytest.raises(ValueError):
            ntn.forward(np.ones(7), np.ones(8))

    def test_symmetric_inputs_nonzero(self):
        ntn = NeuralTensorNetwork(4, 2, _rng(3))
        out = ntn.forward(np.ones(4), np.ones(4))
        assert out.shape == (2,)


class TestConv2D:
    def test_output_channels_and_pooling(self):
        conv = Conv2D(1, 4, _rng())
        out = conv.forward(np.ones((1, 8, 8)))
        assert out.shape == (4, 4, 4)

    def test_no_pool(self):
        conv = Conv2D(1, 4, _rng())
        out = conv.forward(np.ones((1, 8, 8)), pool=False)
        assert out.shape == (4, 8, 8)

    def test_input_validation(self):
        conv = Conv2D(2, 4, _rng())
        with pytest.raises(ValueError):
            conv.forward(np.ones((1, 8, 8)))

    def test_flops_counted(self):
        conv = Conv2D(1, 2, _rng())
        flops = FlopCounter()
        conv.forward(np.ones((1, 4, 4)), flops)
        assert flops.counts["other"] == 2 * 4 * 4 * 1 * 9 * 2

    def test_translation_of_constant_input(self):
        # A constant input must give a constant interior response.
        conv = Conv2D(1, 1, _rng(2))
        out = conv.forward(np.ones((1, 6, 6)), pool=False)
        interior = out[0, 1:-1, 1:-1]
        assert np.allclose(interior, interior[0, 0])
