"""Tests for trainable scoring heads."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.models import (
    LogisticHead,
    build_model,
    evaluate_scorer,
    extract_features,
    train_scorer,
)


class TestLogisticHead:
    def test_separable_data_learned(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(loc=-2.0, size=(40, 3))
        x1 = rng.normal(loc=+2.0, size=(40, 3))
        features = np.vstack([x0, x1])
        labels = np.array([0.0] * 40 + [1.0] * 40)
        head = LogisticHead.fit(features, labels)
        assert (head.predict(features) == labels).mean() > 0.95

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(20, 4))
        labels = rng.integers(0, 2, size=20).astype(float)
        head = LogisticHead.fit(features, labels, epochs=50)
        probabilities = head.predict_proba(features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_constant_feature_column_no_nan(self):
        features = np.ones((10, 2))
        features[:, 1] = np.arange(10)
        labels = (np.arange(10) >= 5).astype(float)
        head = LogisticHead.fit(features, labels)
        assert np.all(np.isfinite(head.predict_proba(features)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticHead.fit(np.ones((4, 2)), np.ones(3))
        with pytest.raises(ValueError):
            LogisticHead.fit(np.ones((1, 2)), np.ones(1))

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(30, 3))
        labels = rng.integers(0, 2, size=30).astype(float)
        a = LogisticHead.fit(features, labels)
        b = LogisticHead.fit(features, labels)
        assert np.array_equal(a.weights, b.weights)


class TestScorerPipeline:
    @pytest.fixture(scope="class")
    def workload(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=32)
        return pairs[:24], pairs[24:]

    def test_feature_extraction_shapes(self, workload):
        train, _ = workload
        model = build_model("GMN-Li", input_dim=train[0].target.feature_dim)
        features, labels = extract_features(model, train[:4])
        assert features.shape[0] == 4
        assert set(labels.tolist()) <= {0.0, 1.0}

    def test_unlabeled_pairs_rejected(self, workload):
        from repro.graphs import GraphPair

        train, _ = workload
        model = build_model("GMN-Li", input_dim=train[0].target.feature_dim)
        unlabeled = GraphPair(train[0].target, train[0].query, label=None)
        with pytest.raises(ValueError):
            extract_features(model, [unlabeled])

    def test_gmnli_learns_similarity_task(self, workload):
        """The paper's premise: GMNs classify similar vs dissimilar
        pairs well. GMN-Li's interaction features separate 1-edge from
        4-edge perturbations even with a random backbone."""
        train, test = workload
        model = build_model("GMN-Li", input_dim=train[0].target.feature_dim)
        head = train_scorer(model, train)
        assert evaluate_scorer(model, head, test) > 0.7

    def test_emf_filtering_preserves_accuracy(self, workload):
        """CEGMA's correctness claim, end to end: EMF-filtered inference
        produces the same predictions as dense inference."""
        train, test = workload
        input_dim = train[0].target.feature_dim
        dense_model = build_model("GMN-Li", input_dim=input_dim)
        emf_model = build_model("GMN-Li", input_dim=input_dim, use_emf=True)
        head = train_scorer(dense_model, train)
        dense_accuracy = evaluate_scorer(dense_model, head, test)
        emf_accuracy = evaluate_scorer(emf_model, head, test)
        assert emf_accuracy == pytest.approx(dense_accuracy)
