"""Tests for the end-to-end trainable GMN."""

import numpy as np
import pytest

from repro.graphs import Graph, GraphPair, load_dataset
from repro.models.trainable import TrainableGMN


@pytest.fixture(scope="module")
def aids_split():
    pairs = load_dataset("AIDS", seed=0, num_pairs=96)
    return pairs[:64], pairs[64:]


class TestConstruction:
    def test_parameter_count(self):
        model = TrainableGMN(hidden_dim=8, num_layers=3)
        # encoder + 3 layer weights + head.
        assert len(model.parameters) == 5

    def test_cross_messages_widen_updates(self):
        with_cross = TrainableGMN(hidden_dim=8, cross_messages=True)
        without = TrainableGMN(hidden_dim=8, cross_messages=False)
        assert with_cross.layer_weights[0].shape == (16, 8)
        assert without.layer_weights[0].shape == (8, 8)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            TrainableGMN(num_layers=0)


class TestScoring:
    def test_score_in_unit_interval(self, aids_split):
        train, _ = aids_split
        model = TrainableGMN(input_dim=train[0].target.feature_dim)
        score = model.score_pair(train[0])
        assert 0.0 < score < 1.0

    def test_deterministic(self, aids_split):
        train, _ = aids_split
        dim = train[0].target.feature_dim
        a = TrainableGMN(input_dim=dim, seed=3).score_pair(train[0])
        b = TrainableGMN(input_dim=dim, seed=3).score_pair(train[0])
        assert a == b


class TestTraining:
    def test_loss_decreases(self, aids_split):
        train, _ = aids_split
        model = TrainableGMN(
            input_dim=train[0].target.feature_dim, hidden_dim=16, seed=0
        )
        losses = model.fit(train[:24], epochs=25)
        assert losses[-1] < losses[0] - 0.05

    def test_learns_above_chance(self, aids_split):
        """The paper's premise: GMNs learn the similarity task. Trained
        end to end, the model clears chance comfortably on held-out
        pairs."""
        train, test = aids_split
        model = TrainableGMN(
            input_dim=train[0].target.feature_dim, hidden_dim=16, seed=1
        )
        model.fit(train, epochs=60)
        assert model.accuracy(test) >= 0.6

    def test_both_matching_modes_learn(self, aids_split):
        """Layer-wise cross messages and the Siamese baseline both learn
        at this scale; resolving the paper's layer-wise accuracy
        *advantage* needs larger models/datasets than this harness runs
        (documented in the module docstring)."""
        train, test = aids_split
        dim = train[0].target.feature_dim
        for cross in (True, False):
            model = TrainableGMN(
                input_dim=dim, hidden_dim=16, cross_messages=cross, seed=1
            )
            model.fit(train, epochs=60)
            assert model.accuracy(test) > 0.55

    def test_unlabeled_pairs_rejected(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (1, 2)])
        model = TrainableGMN()
        with pytest.raises(ValueError):
            model.fit([GraphPair(g, g.copy(), label=None)], epochs=1)

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            TrainableGMN().fit([], epochs=1)
