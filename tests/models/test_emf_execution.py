"""End-to-end EMF-filtered model execution.

The paper's central accuracy claim: filtering redundant matchings does
not change the model's output ("without jeopardizing accuracy",
Section III-C). These tests run each model densely and EMF-filtered on
the same pairs and compare scores and FLOPs.
"""

import numpy as np
import pytest

from repro.graphs import Graph, GraphPair, load_dataset
from repro.models import MODEL_NAMES, build_model


def _duplicate_heavy_pair(leaves=8):
    g = Graph.from_undirected_edges(
        leaves + 1, [(0, i) for i in range(1, leaves + 1)]
    )
    return GraphPair(g, g.copy())


@pytest.fixture(scope="module")
def dataset_pairs():
    return load_dataset("GITHUB", seed=0, num_pairs=3)


class TestScorePreservation:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_scores_match_on_exact_duplicates(self, name):
        pair = _duplicate_heavy_pair()
        dense = build_model(name, seed=1).forward_pair(pair)
        filtered = build_model(name, seed=1, use_emf=True).forward_pair(pair)
        assert filtered.score == pytest.approx(dense.score, abs=1e-9)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_scores_match_on_dataset(self, name, dataset_pairs):
        input_dim = dataset_pairs[0].target.feature_dim
        dense_model = build_model(name, input_dim=input_dim, seed=2)
        emf_model = build_model(name, input_dim=input_dim, seed=2, use_emf=True)
        for pair in dataset_pairs:
            dense = dense_model.forward_pair(pair)
            filtered = emf_model.forward_pair(pair)
            # Lossless up to feature quantization (1e-6); scores pass
            # through bounded heads, so deviations stay tiny.
            assert filtered.score == pytest.approx(dense.score, abs=1e-4)


class TestFlopReduction:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_matching_flops_reduced(self, name, dataset_pairs):
        input_dim = dataset_pairs[0].target.feature_dim
        dense_model = build_model(name, input_dim=input_dim, seed=0)
        emf_model = build_model(name, input_dim=input_dim, seed=0, use_emf=True)
        pair = dataset_pairs[0]
        dense = dense_model.forward_pair(pair).total_flops.counts["match"]
        filtered = emf_model.forward_pair(pair).total_flops.counts["match"]
        assert filtered < dense * 0.6

    def test_embedding_flops_unchanged(self, dataset_pairs):
        input_dim = dataset_pairs[0].target.feature_dim
        dense_model = build_model("GraphSim", input_dim=input_dim, seed=0)
        emf_model = build_model(
            "GraphSim", input_dim=input_dim, seed=0, use_emf=True
        )
        pair = dataset_pairs[0]
        dense = dense_model.forward_pair(pair).total_flops
        filtered = emf_model.forward_pair(pair).total_flops
        assert dense.counts["aggregate"] == filtered.counts["aggregate"]
        assert dense.counts["combine"] == filtered.counts["combine"]


class TestWallClockBenefit:
    def test_filtered_is_not_slower_in_python(self, dataset_pairs):
        """Even in plain numpy, filtering duplicate-heavy workloads
        should not make inference slower (the unique submatrix is far
        smaller)."""
        import time

        input_dim = dataset_pairs[0].target.feature_dim
        dense_model = build_model("GMN-Li", input_dim=input_dim, seed=0)
        emf_model = build_model(
            "GMN-Li", input_dim=input_dim, seed=0, use_emf=True
        )
        pair = dataset_pairs[0]
        dense_model.forward_pair(pair)  # warm up
        emf_model.forward_pair(pair)

        start = time.perf_counter()
        for _ in range(3):
            dense_model.forward_pair(pair)
        dense_time = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(3):
            emf_model.forward_pair(pair)
        filtered_time = time.perf_counter() - start
        assert filtered_time < dense_time * 2.0
