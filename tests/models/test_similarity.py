"""Tests for cross-graph similarity functions (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.counters import FlopCounter
from repro.models import (
    SIMILARITY_KINDS,
    cross_graph_attention,
    matching_flops,
    similarity_matrix,
)


class TestSimilarityMatrix:
    def test_dot_product(self):
        x = np.array([[1.0, 0.0], [0.0, 2.0]])
        y = np.array([[3.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        s = similarity_matrix(x, y, "dot")
        assert s.shape == (2, 3)
        assert s[0, 0] == 3.0
        assert s[1, 1] == 2.0

    def test_cosine_bounded(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(5, 8)), rng.normal(size=(7, 8))
        s = similarity_matrix(x, y, "cosine")
        assert np.all(s <= 1.0 + 1e-9)
        assert np.all(s >= -1.0 - 1e-9)

    def test_cosine_self_similarity_is_one(self):
        x = np.random.default_rng(1).normal(size=(4, 6))
        s = similarity_matrix(x, x, "cosine")
        assert np.allclose(np.diag(s), 1.0)

    def test_cosine_zero_vector_no_nan(self):
        x = np.zeros((2, 4))
        y = np.ones((3, 4))
        assert np.all(np.isfinite(similarity_matrix(x, y, "cosine")))

    def test_euclidean_is_negative_half_squared_distance(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(3, 5)), rng.normal(size=(4, 5))
        s = similarity_matrix(x, y, "euclidean")
        for i in range(3):
            for j in range(4):
                expected = -0.5 * np.sum((x[i] - y[j]) ** 2)
                assert s[i, j] == pytest.approx(expected)

    def test_euclidean_identical_rows_give_max_score(self):
        x = np.array([[1.0, 2.0]])
        s = similarity_matrix(x, x, "euclidean")
        assert s[0, 0] == pytest.approx(0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            similarity_matrix(np.ones((2, 2)), np.ones((2, 2)), "manhattan")

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            similarity_matrix(np.ones((2, 3)), np.ones((2, 4)), "dot")

    def test_flops_recorded_under_match(self):
        flops = FlopCounter()
        similarity_matrix(np.ones((4, 8)), np.ones((5, 8)), "dot", flops)
        assert flops.counts["match"] == 2 * 4 * 5 * 8

    @given(
        x=arrays(np.float64, (3, 4), elements=st.floats(-5, 5)),
        y=arrays(np.float64, (2, 4), elements=st.floats(-5, 5)),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_duplicate_rows_give_duplicate_sim_rows(self, x, y):
        """The paper's core observation: X_i == X_j implies S_i == S_j."""
        x = np.vstack([x, x[0]])  # row 3 duplicates row 0
        for kind in SIMILARITY_KINDS:
            s = similarity_matrix(x, y, kind)
            assert np.array_equal(s[0], s[3])


class TestMatchingFlops:
    @pytest.mark.parametrize("kind", SIMILARITY_KINDS)
    def test_dominant_term(self, kind):
        flops = matching_flops(100, 100, 64, kind)
        assert flops >= 2 * 100 * 100 * 64

    def test_dot_exact(self):
        assert matching_flops(10, 20, 8, "dot") == 2 * 10 * 20 * 8

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            matching_flops(2, 2, 2, "hamming")

    def test_quadratic_growth(self):
        """Section III-B: matching grows quadratically with graph size."""
        small = matching_flops(10, 10, 64)
        large = matching_flops(100, 100, 64)
        assert large == 100 * small


class TestCrossGraphAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(4, 6)), rng.normal(size=(5, 6))
        s = similarity_matrix(x, y, "euclidean")
        mu = cross_graph_attention(x, y, s)
        assert mu.shape == (4, 6)

    def test_identical_graphs_give_near_zero_message(self):
        # If x == y and attention concentrates on the matching node, the
        # message x_i - sum_j a_ij y_j approaches zero.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4)) * 10  # large scale sharpens softmax
        s = similarity_matrix(x, x, "euclidean")
        mu = cross_graph_attention(x, x, s)
        assert np.abs(mu).max() < 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_graph_attention(
                np.ones((3, 2)), np.ones((4, 2)), np.ones((3, 3))
            )

    def test_attention_rows_are_convex_combinations(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(3, 4)), rng.normal(size=(6, 4))
        s = similarity_matrix(x, y, "dot")
        mu = cross_graph_attention(x, y, s)
        attended = x - mu
        # Each attended row must lie within the convex hull's bounding box.
        assert np.all(attended <= y.max(axis=0) + 1e-9)
        assert np.all(attended >= y.min(axis=0) - 1e-9)


class TestCrossGraphAttentionUnique:
    """The EMF-filtered attention must be exact w.r.t. the dense path."""

    def _setup(self, seed=0, uniques_x=4, uniques_y=3, n=12, m=10):
        from repro.emf.filter import MatchingPlan

        rng = np.random.default_rng(seed)
        base_x = rng.normal(size=(uniques_x, 6))
        base_y = rng.normal(size=(uniques_y, 6))
        x = base_x[rng.integers(0, uniques_x, size=n)]
        y = base_y[rng.integers(0, uniques_y, size=m)]
        plan = MatchingPlan.from_features(x, y)
        return x, y, plan

    def test_matches_dense_attention(self):
        from repro.models import cross_graph_attention_unique

        x, y, plan = self._setup()
        dense_similarity = similarity_matrix(x, y, "euclidean")
        dense = cross_graph_attention(x, y, dense_similarity)

        unique_x = x[plan.target_filter.unique_indices]
        unique_y = y[plan.query_filter.unique_indices]
        unique_similarity = similarity_matrix(unique_x, unique_y, "euclidean")
        filtered = plan.target_filter.expand_rows(
            cross_graph_attention_unique(
                unique_x,
                unique_y,
                unique_similarity,
                plan.query_filter.multiplicities(),
            )
        )
        assert np.allclose(dense, filtered, atol=1e-12)

    def test_shape_validation(self):
        from repro.models import cross_graph_attention_unique

        with pytest.raises(ValueError):
            cross_graph_attention_unique(
                np.ones((2, 3)), np.ones((4, 3)), np.ones((2, 3)), np.ones(3)
            )
        with pytest.raises(ValueError):
            cross_graph_attention_unique(
                np.ones((2, 3)), np.ones((4, 3)), np.ones((2, 4)), np.ones(3)
            )

    def test_multiplicities_all_one_reduces_to_dense(self):
        from repro.models import cross_graph_attention_unique

        rng = np.random.default_rng(1)
        x, y = rng.normal(size=(3, 4)), rng.normal(size=(5, 4))
        s = similarity_matrix(x, y, "euclidean")
        dense = cross_graph_attention(x, y, s)
        filtered = cross_graph_attention_unique(x, y, s, np.ones(5, dtype=int))
        assert np.allclose(dense, filtered)
