"""Integration tests for the three Table I GMN models."""

import numpy as np
import pytest

from repro.graphs import Graph, GraphPair, load_dataset
from repro.models import MODEL_NAMES, GMNLi, GraphSim, SimGNN, build_model


@pytest.fixture(scope="module")
def aids_pairs():
    return load_dataset("AIDS", seed=0, num_pairs=4)


def _unlabeled_pair(n=8, seed=0):
    rng = np.random.default_rng(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]
    target = Graph.from_undirected_edges(n, edges)
    query = Graph.from_undirected_edges(n, edges[:-1] + [(0, n // 2)])
    return GraphPair(target, query, label=1)


class TestRegistry:
    def test_three_models(self):
        assert set(MODEL_NAMES) == {"GMN-Li", "GraphSim", "SimGNN"}

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("GNN-X")

    def test_table1_configurations(self):
        gmn = GMNLi()
        assert gmn.num_layers == 5
        assert gmn.similarity == "euclidean"
        assert gmn.matching_mode == "layer-wise"

        gs = GraphSim()
        assert gs.num_layers == 3
        assert gs.similarity == "cosine"
        assert gs.matching_mode == "layer-wise"

        sg = SimGNN()
        assert sg.num_layers == 3
        assert sg.similarity == "dot"
        assert sg.matching_mode == "model-wise"


class TestForwardPass:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_score_in_unit_interval(self, name):
        model = build_model(name)
        trace = model.forward_pair(_unlabeled_pair())
        assert 0.0 <= trace.score <= 1.0

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_deterministic(self, name):
        pair = _unlabeled_pair()
        t1 = build_model(name, seed=3).forward_pair(pair)
        t2 = build_model(name, seed=3).forward_pair(pair)
        assert t1.score == t2.score

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_input_dim_validated(self, name):
        model = build_model(name, input_dim=4)
        with pytest.raises(ValueError):
            model.forward_pair(_unlabeled_pair())

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_runs_on_labeled_dataset(self, name, aids_pairs):
        input_dim = aids_pairs[0].target.feature_dim
        model = build_model(name, input_dim=input_dim)
        trace = model.forward_pair(aids_pairs[0])
        assert np.isfinite(trace.score)


class TestTraceStructure:
    def test_layerwise_models_match_every_layer(self):
        pair = _unlabeled_pair()
        for model in (GMNLi(), GraphSim()):
            trace = model.forward_pair(pair)
            assert trace.num_matching_layers == model.num_layers
            assert all(layer.has_matching for layer in trace.layers)

    def test_modelwise_matches_last_layer_only(self):
        trace = SimGNN().forward_pair(_unlabeled_pair())
        assert trace.num_matching_layers == 1
        assert trace.layers[-1].has_matching
        assert not trace.layers[0].has_matching

    def test_matching_pair_counts(self):
        pair = _unlabeled_pair(n=8)
        trace = GMNLi().forward_pair(pair)
        assert trace.total_matching_pairs == 5 * 8 * 8
        trace = SimGNN().forward_pair(pair)
        assert trace.total_matching_pairs == 8 * 8

    def test_features_recorded_per_layer(self):
        pair = _unlabeled_pair(n=6)
        trace = GraphSim().forward_pair(pair)
        for layer in trace.layers:
            assert layer.target_features.shape == (6, 64)
            assert layer.query_features.shape == (6, 64)

    def test_flops_positive_everywhere(self):
        pair = _unlabeled_pair()
        for name in MODEL_NAMES:
            trace = build_model(name).forward_pair(pair)
            assert trace.total_flops.total > 0
            for layer in trace.layers:
                assert layer.flops.total > 0

    def test_gmnli_matching_dominates_on_large_graphs(self):
        """Section III-B: matching FLOPs dominate as graphs grow."""
        n = 500
        edges = [(i, (i + 1) % n) for i in range(n)]
        g = Graph.from_undirected_edges(n, edges)
        pair = GraphPair(g, g.copy())
        trace = GMNLi().forward_pair(pair)
        flops = trace.total_flops
        assert flops.fraction("match") > 0.5


class TestDuplicateFeaturePropagation:
    """The paper's Fig. 5/6 worked example: nodes with isomorphic l-hop
    neighborhoods carry identical features at layer l, producing
    identical similarity-matrix rows."""

    def test_symmetric_nodes_share_features(self):
        # Star graph: all leaves are mutually isomorphic at every depth.
        leaves = 5
        g = Graph.from_undirected_edges(leaves + 1, [(0, i) for i in range(1, leaves + 1)])
        pair = GraphPair(g, g.copy())
        trace = GraphSim().forward_pair(pair)
        for layer in trace.layers:
            feats = layer.target_features
            for i in range(2, leaves + 1):
                assert np.allclose(feats[1], feats[i])

    def test_asymmetric_nodes_differ(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        pair = GraphPair(g, g.copy())
        trace = GraphSim().forward_pair(pair)
        feats = trace.layers[0].target_features
        assert not np.allclose(feats[0], feats[1])
