"""Worked examples from the paper's motivation (Figs. 5 and 6)."""

import numpy as np

from repro.emf import MatchingPlan, elastic_matching_filter
from repro.graphs import Graph, GraphPair
from repro.models import GMNLi, GraphSim, similarity_matrix


def fig5_pair():
    """Fig. 5's example: in G1, node_1 and node_2 each connect only to
    node_3 (identical 1-hop and 2-hop neighborhoods), so their features
    coincide at every layer. Unlabelled graphs: identical initial
    features."""
    target = Graph.from_undirected_edges(4, [(0, 2), (1, 2), (2, 3)])
    query = Graph.from_undirected_edges(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)]
    )
    return GraphPair(target, query)


class TestFig5DuplicateFeatures:
    def test_node1_node2_identical_every_layer(self):
        trace = GraphSim().forward_pair(fig5_pair())
        for layer in trace.layers:
            features = layer.target_features
            assert np.allclose(features[0], features[1]), layer.layer_index

    def test_holds_for_mgnn_propagation_too(self):
        trace = GMNLi().forward_pair(fig5_pair())
        for layer in trace.layers:
            features = layer.target_features
            assert np.allclose(features[0], features[1]), layer.layer_index

    def test_hub_node_differs(self):
        trace = GraphSim().forward_pair(fig5_pair())
        features = trace.layers[-1].target_features
        assert not np.allclose(features[0], features[2])

    def test_all_leaves_are_equivalent(self):
        """Beyond the figure's highlighted pair: node_4 is also a leaf of
        node_3, so all three leaves share features — EMF finds strictly
        more redundancy than the example annotates."""
        trace = GraphSim().forward_pair(fig5_pair())
        features = trace.layers[-1].target_features
        assert np.allclose(features[0], features[3])


class TestFig6SimilarityRows:
    """Fig. 6: X_1 = X_3 implies S_1 = S_3, so row 3 can be copied."""

    def test_duplicate_rows_in_similarity_matrix(self):
        trace = GraphSim().forward_pair(fig5_pair())
        layer = trace.layers[-1]
        s = similarity_matrix(
            layer.target_features, layer.query_features, "cosine"
        )
        assert np.allclose(s[0], s[1])

    def test_emf_detects_all_duplicates(self):
        trace = GraphSim().forward_pair(fig5_pair())
        layer = trace.layers[-1]
        result = elastic_matching_filter(layer.target_features)
        # Leaves 1 and 3 both affiliate with leaf 0; the hub is unique.
        assert result.tag_map == {1: 0, 3: 0}
        assert result.num_unique == 2

    def test_copying_the_row_is_lossless(self):
        trace = GraphSim().forward_pair(fig5_pair())
        layer = trace.layers[-1]
        plan = MatchingPlan.from_features(
            layer.target_features, layer.query_features
        )
        full = similarity_matrix(
            layer.target_features, layer.query_features, "cosine"
        )
        rebuilt = plan.broadcast(plan.unique_similarity(full))
        assert np.allclose(full, rebuilt, atol=1e-12)


class TestIntroExample:
    """Section I: matching two 100-node/1000-edge graphs requires 10,000
    cross-graph comparisons — more than 10x the intra-graph edge work."""

    def test_matching_count(self):
        n = 100
        edges = [(i, (i + k) % n) for i in range(n) for k in range(1, 6)]
        g = Graph.from_undirected_edges(n, edges)
        pair = GraphPair(g, g.copy())
        assert pair.num_matching_pairs == 10_000
        assert g.num_edges == 1000
        # "more than 10x computation ... than the intra-graph edge
        # processing": 10,000 matchings vs 1,000 edges per graph.
        assert pair.num_matching_pairs == 10 * g.num_edges
