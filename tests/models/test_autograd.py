"""Gradient checks for the minimal autodiff engine."""

import numpy as np
import pytest

from repro.models.autograd import Tensor, bce_loss, concat


def numerical_gradient(build_loss, parameter: np.ndarray, epsilon=1e-6):
    """Central-difference gradient of a scalar loss wrt ``parameter``."""
    gradient = np.zeros_like(parameter)
    flat = parameter.ravel()
    grad_flat = gradient.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = build_loss()
        flat[i] = original - epsilon
        minus = build_loss()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return gradient


def check_gradient(make_graph, parameter_data):
    """Compare autodiff and numerical gradients for one parameter."""
    parameter = Tensor(parameter_data.copy(), requires_grad=True)
    loss = make_graph(parameter)
    loss.backward()
    auto = parameter.grad.copy()

    def rebuild():
        return float(make_graph(Tensor(parameter.data)).data)

    numeric = numerical_gradient(rebuild, parameter.data)
    assert np.allclose(auto, numeric, atol=1e-5), (auto, numeric)


class TestElementwiseGradients:
    def test_add_mul(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(3, 2))

        def graph(p):
            return ((p * 2.0 + 1.0) * p).sum()

        check_gradient(graph, w)

    def test_broadcast_bias(self):
        rng = np.random.default_rng(1)
        b = rng.normal(size=(1, 4))
        x = rng.normal(size=(5, 4))

        def graph(p):
            return (Tensor(x) + p).relu().sum()

        check_gradient(graph, b)

    @pytest.mark.parametrize("op", ["relu", "sigmoid", "tanh", "abs"])
    def test_unary(self, op):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(4, 3)) + 0.1  # avoid relu/abs kinks at 0

        def graph(p):
            return getattr(p, op)().sum()

        check_gradient(graph, w)

    def test_log(self):
        rng = np.random.default_rng(3)
        w = rng.uniform(0.5, 2.0, size=(3, 3))

        def graph(p):
            return p.log().sum()

        check_gradient(graph, w)


class TestMatmulGradients:
    def test_tensor_matmul(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(3, 4))
        x = rng.normal(size=(5, 3))

        def graph(p):
            return (Tensor(x) @ p).sum()

        check_gradient(graph, w)

    def test_constant_left_matmul(self):
        rng = np.random.default_rng(5)
        adjacency = rng.normal(size=(4, 4))
        w = rng.normal(size=(4, 2))

        def graph(p):
            return (adjacency @ p).relu().sum()

        check_gradient(graph, w)

    def test_transpose(self):
        rng = np.random.default_rng(6)
        w = rng.normal(size=(3, 5))

        def graph(p):
            return (p @ p.T).sum()

        check_gradient(graph, w)


class TestStructuredGradients:
    def test_softmax_rows(self):
        rng = np.random.default_rng(7)
        w = rng.normal(size=(3, 4))
        weights = rng.normal(size=(3, 4))

        def graph(p):
            return (p.softmax_rows() * weights).sum()

        check_gradient(graph, w)

    def test_concat(self):
        rng = np.random.default_rng(8)
        w = rng.normal(size=(3, 2))
        other = rng.normal(size=(3, 3))

        def graph(p):
            joined = concat([p, Tensor(other)], axis=1)
            return (joined * joined).sum()

        check_gradient(graph, w)

    def test_mean_rows(self):
        rng = np.random.default_rng(9)
        w = rng.normal(size=(4, 3))

        def graph(p):
            return (p.mean_rows() * 2.0).sum()

        check_gradient(graph, w)

    def test_bce_loss_both_labels(self):
        rng = np.random.default_rng(10)
        w = rng.normal(size=(1, 1))
        for label in (0.0, 1.0):

            def graph(p, label=label):
                return bce_loss((p * 3.0).sum(), label)

            check_gradient(graph, w)


class TestEngineMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_gradient_accumulates_over_reuse(self):
        w = Tensor(np.array([[2.0]]), requires_grad=True)
        loss = (w * 3.0 + w * 4.0).sum()
        loss.backward()
        assert w.grad[0, 0] == pytest.approx(7.0)

    def test_zero_grad(self):
        w = Tensor(np.ones((2,)), requires_grad=True)
        (w * w).sum().backward()
        assert w.grad is not None
        w.zero_grad()
        assert w.grad is None

    def test_diamond_graph(self):
        """A value used along two paths receives both contributions."""
        w = Tensor(np.array([1.5]), requires_grad=True)
        a = w * 2.0
        loss = (a * a + a).sum()  # d/dw = (2a+1)*2 = 2*(2*3+1) = 14
        loss.backward()
        assert w.grad[0] == pytest.approx(14.0)
