"""Tests for the configurable CustomGMN."""

import numpy as np
import pytest

from repro.graphs import Graph, GraphPair, load_dataset
from repro.models.custom import CustomGMN
from repro.sim import AcceleratorSimulator, awbgcn_config, cegma_config
from repro.trace.profiler import profile_batches


def _pair(n=10):
    g = Graph.from_undirected_edges(n, [(i, (i + 1) % n) for i in range(n)])
    return GraphPair(g, g.copy(), label=1)


class TestConfiguration:
    def test_layer_count_respected(self):
        model = CustomGMN(num_layers=4)
        trace = model.forward_pair(_pair())
        assert len(trace.layers) == 4

    @pytest.mark.parametrize("kind", ["dot", "cosine", "euclidean"])
    def test_similarity_kinds(self, kind):
        model = CustomGMN(similarity=kind)
        trace = model.forward_pair(_pair())
        assert trace.layers[-1].similarity == kind

    def test_model_wise_matching(self):
        model = CustomGMN(matching_mode="model-wise", num_layers=3)
        trace = model.forward_pair(_pair())
        assert trace.num_matching_layers == 1

    def test_cross_messages_set_in_layer_usage(self):
        assert CustomGMN(cross_messages=True).matching_usage == "in-layer"
        assert CustomGMN(cross_messages=False).matching_usage == "writeback"

    def test_invalid_similarity_rejected(self):
        with pytest.raises(ValueError):
            CustomGMN(similarity="manhattan")

    def test_head_features_exposed(self):
        trace = CustomGMN(hidden_dim=16).forward_pair(_pair())
        assert trace.head_features.shape == (32,)

    def test_score_in_unit_interval(self):
        trace = CustomGMN().forward_pair(_pair())
        assert 0.0 < trace.score <= 1.0


class TestEmfIntegration:
    def test_use_emf_preserves_score(self):
        pair = _pair(12)
        dense = CustomGMN(seed=3, cross_messages=False).forward_pair(pair)
        filtered = CustomGMN(
            seed=3, cross_messages=False, use_emf=True
        ).forward_pair(pair)
        assert filtered.score == pytest.approx(dense.score, abs=1e-9)


class TestExtensionStudy:
    def test_cegma_gain_scales_with_matching_depth(self):
        """The extension question the class exists for: more matching
        layers mean more EMF-removable work, hence larger CEGMA gains."""
        pairs = load_dataset("RD-B", seed=0, num_pairs=2)
        input_dim = pairs[0].target.feature_dim

        def gain(num_layers):
            model = CustomGMN(input_dim=input_dim, num_layers=num_layers)
            traces = profile_batches(model, pairs, batch_size=2)
            cegma = AcceleratorSimulator(cegma_config()).simulate_batches(traces)
            awb = AcceleratorSimulator(awbgcn_config()).simulate_batches(traces)
            return awb.latency_seconds / cegma.latency_seconds

        assert gain(5) > gain(1)
