"""Tests for terminal plotting."""

import pytest

from repro.analysis.ascii_plot import bar_chart, line_plot, log_bar_chart


class TestBarChart:
    def test_peak_bar_is_full_width(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert "█" * 10 in lines[0]

    def test_values_annotated(self):
        chart = bar_chart({"x": 42.0})
        assert "42.00" in chart

    def test_title_included(self):
        assert bar_chart({"a": 1.0}, title="hello").startswith("hello")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_zero_values_ok(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart


class TestLogBarChart:
    def test_log_scaling(self):
        chart = log_bar_chart({"big": 1000.0, "small": 10.0}, width=30)
        lines = chart.splitlines()
        big_bar = lines[0].count("█")
        small_bar = lines[1].count("█")
        # log10(10)/log10(1000) = 1/3 of the width, not 1/100.
        assert small_bar == pytest.approx(big_bar / 3, abs=1)

    def test_sub_one_rejected(self):
        with pytest.raises(ValueError):
            log_bar_chart({"a": 0.5})

    def test_ratio_suffix(self):
        assert "x" in log_bar_chart({"a": 2.0})


class TestLinePlot:
    def test_dimensions(self):
        chart = line_plot({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        lines = chart.splitlines()
        canvas_lines = [l for l in lines if l.startswith("|")]
        assert len(canvas_lines) == 5

    def test_legend_and_ranges(self):
        chart = line_plot({"alpha": [(0, 0), (2, 4)]})
        assert "o=alpha" in chart
        assert "x: [0.00, 2.00]" in chart

    def test_multiple_series_distinct_markers(self):
        chart = line_plot({"a": [(0, 0)], "b": [(1, 1)]})
        assert "o=a" in chart
        assert "x=b" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})

    def test_constant_series_no_crash(self):
        chart = line_plot({"flat": [(0, 1), (1, 1), (2, 1)]})
        assert "flat" in chart


class TestExperimentPlots:
    def test_fig16_plot_renders(self):
        from repro.experiments.plots import render_plots
        from repro.experiments.registry import run_experiment

        result = run_experiment("fig16", quick=True)
        chart = render_plots(result)
        assert "log scale" in chart
        assert "PyG-CPU" in chart

    def test_unsupported_experiment_renders_nothing(self):
        from repro.experiments.plots import render_plots
        from repro.experiments.registry import run_experiment

        result = run_experiment("table3", quick=True)
        assert render_plots(result) == ""
