"""Tests for matching-redundancy measurement (Figs. 7 and 18)."""

import pytest

from repro.analysis import (
    dataset_redundancy,
    pair_matching_counts,
    redundant_to_unique_ratio,
    remaining_matching_fraction,
)
from repro.graphs import Graph, GraphPair, load_dataset
from repro.models import GraphSim, SimGNN, build_model


def _star_pair(leaves=6):
    g = Graph.from_undirected_edges(
        leaves + 1, [(0, i) for i in range(1, leaves + 1)]
    )
    return GraphPair(g, g.copy())


class TestPairCounts:
    def test_star_graph_redundancy(self):
        """All leaves of a star share features, so only (hub, leaf) x
        (hub, leaf) = 4 unique matchings remain per layer."""
        trace = GraphSim().forward_pair(_star_pair(leaves=6))
        counts = pair_matching_counts(trace)
        assert counts["total"] == 3 * 49
        assert counts["unique"] == 3 * 4
        assert counts["redundant"] == counts["total"] - counts["unique"]

    def test_modelwise_counts_last_layer_only(self):
        trace = SimGNN().forward_pair(_star_pair(leaves=6))
        counts = pair_matching_counts(trace)
        assert counts["total"] == 49
        assert counts["unique"] == 4

    def test_no_duplicates_path(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        trace = GraphSim().forward_pair(GraphPair(g, g.copy()))
        counts = pair_matching_counts(trace)
        # Path 0-1-2-3 has mirror symmetry: 2 unique of 4 per side.
        assert counts["unique"] == 3 * 4


class TestWorkloadMetrics:
    def test_remaining_fraction_range(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=4)
        model = build_model("GraphSim", input_dim=pairs[0].target.feature_dim)
        traces = [model.forward_pair(p) for p in pairs]
        remaining = remaining_matching_fraction(traces)
        assert 0.0 < remaining < 1.0

    def test_ratio_consistent_with_fraction(self):
        traces = [GraphSim().forward_pair(_star_pair())]
        remaining = remaining_matching_fraction(traces)
        ratio = redundant_to_unique_ratio(traces)
        assert ratio == pytest.approx((1 - remaining) / remaining)

    def test_dataset_redundancy_keys(self):
        traces = [GraphSim().forward_pair(_star_pair())]
        summary = dataset_redundancy(traces)
        assert summary["removed_fraction"] == pytest.approx(
            1 - summary["remaining_fraction"]
        )
        assert summary["redundant_to_unique"] > 0

    def test_empty_traces(self):
        assert remaining_matching_fraction([]) == 1.0
        assert redundant_to_unique_ratio([]) == 0.0


class TestFig18Anchors:
    """Fig. 18's dataset anchors: ~67% of matchings removed on AIDS,
    ~97% on RD-5K, with large datasets more redundant than small."""

    def test_aids_removal_near_paper(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=6)
        model = build_model("GraphSim", input_dim=pairs[0].target.feature_dim)
        traces = [model.forward_pair(p) for p in pairs]
        removed = 1 - remaining_matching_fraction(traces)
        assert 0.5 < removed < 0.85

    def test_rd5k_removal_near_paper(self):
        pairs = load_dataset("RD-5K", seed=0, num_pairs=2)
        model = build_model("GraphSim", input_dim=pairs[0].target.feature_dim)
        traces = [model.forward_pair(p) for p in pairs]
        removed = 1 - remaining_matching_fraction(traces)
        assert removed > 0.9

    def test_large_more_redundant_than_small(self):
        def removed(ds, n):
            pairs = load_dataset(ds, seed=0, num_pairs=n)
            model = build_model(
                "GraphSim", input_dim=pairs[0].target.feature_dim
            )
            traces = [model.forward_pair(p) for p in pairs]
            return 1 - remaining_matching_fraction(traces)

        assert removed("RD-B", 2) > removed("AIDS", 6)
