"""Tests for the roofline analysis utility."""

import pytest

from repro.analysis.roofline import (
    arithmetic_intensity,
    machine_balance,
    roofline_report,
)
from repro.experiments.common import workload_traces
from repro.sim import AcceleratorSimulator, awbgcn_config, cegma_config
from repro.sim.engine import PlatformResult


def _result(macs, dram, cycles=1000.0):
    result = PlatformResult("x", 1e9)
    result.macs = macs
    result.dram_read_bytes = dram
    result.cycles = cycles
    return result


class TestDefinitions:
    def test_intensity(self):
        assert arithmetic_intensity(_result(1000, 100)) == 10.0

    def test_zero_dram_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(_result(1000, 0))

    def test_machine_balance(self):
        config = cegma_config()
        assert machine_balance(config) == config.mac_units / 256.0

    def test_bound_classification(self):
        config = cegma_config()
        balance = machine_balance(config)
        compute_bound = _result(balance * 1000 * 2, 1000)
        memory_bound = _result(balance * 1000 / 2, 1000)
        assert roofline_report(compute_bound, config)["bound"] == 1.0
        assert roofline_report(memory_bound, config)["bound"] == -1.0


class TestWorkloads:
    def test_emf_lowers_intensity(self):
        """The EMF removes MACs (and some loads); under type-(a)
        writeback the DRAM floor stays, so intensity drops — CEGMA
        pushes matching-heavy workloads toward the memory roof, which
        is exactly why the CGC is needed alongside it."""
        traces = list(workload_traces("GraphSim", "RD-B", 2, 2, 0))
        cegma = AcceleratorSimulator(cegma_config()).simulate_batches(traces)
        awb = AcceleratorSimulator(awbgcn_config()).simulate_batches(traces)
        assert arithmetic_intensity(cegma) < arithmetic_intensity(awb)

    def test_attained_rate_bounded_by_peak(self):
        traces = list(workload_traces("GMN-Li", "AIDS", 2, 2, 0))
        config = cegma_config()
        result = AcceleratorSimulator(config).simulate_batches(traces)
        report = roofline_report(result, config)
        assert 0 < report["attained_macs_per_cycle"] <= config.mac_units
