"""Tests for result-aggregation helpers."""

import pytest

from repro.analysis import ResultTable, geomean, normalize_to, speedup
from repro.sim.engine import PlatformResult


def _result(name, cycles):
    result = PlatformResult(name, 1e9)
    result.cycles = cycles
    result.num_pairs = 1
    return result


class TestSpeedup:
    def test_basic(self):
        assert speedup(_result("slow", 100), _result("fast", 25)) == 4.0

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            speedup(_result("a", 100), _result("b", 0))


class TestNormalize:
    def test_reference_becomes_one(self):
        normalized = normalize_to({"a": 10.0, "b": 5.0}, "a")
        assert normalized == {"a": 1.0, "b": 0.5}

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "z")

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0}, "a")


class TestGeomean:
    def test_matches_definition(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geomean([7.5]) == pytest.approx(7.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestResultTable:
    def test_render_contains_cells(self):
        table = ResultTable(["dataset", "speedup"], title="Fig. X")
        table.add_row("AIDS", 1.5)
        text = table.render()
        assert "Fig. X" in text
        assert "AIDS" in text
        assert "1.500" in text

    def test_row_arity_checked(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable([])

    def test_scientific_formatting_for_extremes(self):
        table = ResultTable(["v"])
        table.add_row(1.23e9)
        assert "e+09" in table.render()

    def test_zero_formats_plainly(self):
        table = ResultTable(["v"])
        table.add_row(0.0)
        assert "0.000" in table.render()
