"""Tests for reuse-distance profiling (Figs. 4 and 20)."""

import numpy as np
import pytest

from repro.analysis import (
    baseline_reference_stream,
    cegma_reference_stream,
    fraction_within,
    lru_stack_distances,
    profile_reuse,
    reuse_distance_cdf,
)
from repro.graphs import load_dataset


class TestStackDistances:
    def test_cold_misses_are_infinite(self):
        distances = lru_stack_distances([1, 2, 3])
        assert all(np.isinf(d) for d in distances)

    def test_immediate_reuse_distance_zero(self):
        assert lru_stack_distances([1, 1])[1] == 0.0

    def test_classic_example(self):
        # a b c a : reuse of a skips over {b, c} -> distance 2.
        distances = lru_stack_distances(["a", "b", "c", "a"])
        assert distances[3] == 2.0

    def test_lru_reordering(self):
        # a b a b : second b only skips a -> distance 1 (not 2).
        distances = lru_stack_distances(["a", "b", "a", "b"])
        assert distances[2] == 1.0
        assert distances[3] == 1.0

    def test_empty_stream(self):
        assert lru_stack_distances([]) == []


class TestCdfHelpers:
    def test_cdf_monotone(self):
        thresholds, cdf = reuse_distance_cdf([1, 2, 4, 1000, float("inf")])
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == 1.0  # all finite reuses below 2^20

    def test_cdf_of_no_reuses(self):
        thresholds, cdf = reuse_distance_cdf([float("inf")])
        assert np.all(cdf == 1.0)

    def test_fraction_within(self):
        distances = [1.0, 10.0, 1000.0, float("inf")]
        assert fraction_within(distances, 100) == pytest.approx(2 / 3)

    def test_fraction_within_no_reuses(self):
        assert fraction_within([float("inf")], 10) == 1.0


class TestReferenceStreams:
    @pytest.fixture(scope="class")
    def pairs(self):
        return load_dataset("AIDS", seed=0, num_pairs=8)

    def test_baseline_touches_every_node(self, pairs):
        stream = baseline_reference_stream(pairs, capacity=512, num_layers=1)
        total_nodes = sum(p.total_nodes for p in pairs)
        assert len(set(stream)) == total_nodes

    def test_cegma_touches_every_node(self, pairs):
        stream = cegma_reference_stream(pairs, capacity=512, num_layers=1)
        total_nodes = sum(p.total_nodes for p in pairs)
        assert len(set(stream)) == total_nodes

    def test_capacity_validated(self, pairs):
        with pytest.raises(ValueError):
            baseline_reference_stream(pairs, capacity=1, num_layers=1)

    def test_layers_multiply_references(self, pairs):
        one = baseline_reference_stream(pairs, 512, num_layers=1)
        three = baseline_reference_stream(pairs, 512, num_layers=3)
        assert len(three) == 3 * len(one)


class TestFig4Fig20Shape:
    """The paper's headline reuse results: under the baseline regime
    nearly all reuses exceed the 512-node buffer; under CEGMA they
    collapse to window scales."""

    def test_baseline_reuses_mostly_missed(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=16)
        distances = profile_reuse(pairs, capacity=512, num_layers=3, cegma=False)
        assert fraction_within(distances, 512) < 0.1

    def test_cegma_reuses_mostly_captured_small_graphs(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=16)
        distances = profile_reuse(pairs, capacity=512, num_layers=3, cegma=True)
        assert fraction_within(distances, 512) > 0.9

    def test_cegma_improves_over_baseline_on_large_graphs(self):
        pairs = load_dataset("RD-B", seed=0, num_pairs=4)
        base = profile_reuse(pairs, capacity=512, num_layers=3, cegma=False)
        cegma = profile_reuse(pairs, capacity=512, num_layers=3, cegma=True)
        assert fraction_within(cegma, 512) > fraction_within(base, 512) + 0.2
