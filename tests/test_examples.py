"""Smoke tests: the fast example scripts run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "EMF-filtered similarity" in out
        assert "CEGMA" in out

    def test_paper_walkthrough(self, capsys):
        _run("paper_walkthrough.py")
        out = capsys.readouterr().out
        assert "RecordSet" in out
        assert "coordinated" in out

    @pytest.mark.slow
    def test_code_clone_search(self, capsys):
        _run("code_clone_search.py")
        out = capsys.readouterr().out
        assert "planted clone" in out
