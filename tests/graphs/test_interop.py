"""Tests for networkx/scipy interoperability."""

import networkx as nx
import numpy as np

from repro.graphs import Graph, MotifSpec, motif_soup_graph
from repro.graphs.interop import (
    from_networkx,
    sparse_adjacency,
    sparse_normalized_adjacency,
    to_networkx,
)


def _sample_graph():
    features = np.arange(8, dtype=float).reshape(4, 2)
    return Graph.from_undirected_edges(
        4, [(0, 1), (1, 2), (2, 3), (0, 3)], features
    )


class TestNetworkxRoundTrip:
    def test_topology_preserved(self):
        g = _sample_graph()
        restored = from_networkx(to_networkx(g))
        assert restored.undirected_edge_set() == g.undirected_edge_set()
        assert restored.num_nodes == g.num_nodes

    def test_features_preserved(self):
        g = _sample_graph()
        restored = from_networkx(to_networkx(g))
        assert np.array_equal(restored.node_features, g.node_features)

    def test_missing_features_default_to_ones(self):
        nx_graph = nx.path_graph(3)
        g = from_networkx(nx_graph)
        assert np.array_equal(g.node_features, np.ones((3, 1)))

    def test_arbitrary_node_labels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("alpha", "beta")
        nx_graph.add_edge("beta", "gamma")
        g = from_networkx(nx_graph, feature_key=None)
        assert g.num_nodes == 3
        assert g.num_undirected_edges == 2

    def test_motif_copies_are_isomorphic(self):
        """Use networkx's VF2 to certify the generator's core property:
        motif copies are genuinely isomorphic subgraphs."""
        rng = np.random.default_rng(0)
        g = motif_soup_graph(
            [MotifSpec("wheel", 6, copies=2)],
            random_nodes=0,
            random_edges=0,
            rng=rng,
        )
        whole = to_networkx(g)
        first = whole.subgraph(range(6))
        second = whole.subgraph(range(6, 12))
        assert nx.is_isomorphic(first, second)


class TestSparseMatrices:
    def test_sparse_adjacency_matches_dense(self):
        g = _sample_graph()
        assert np.array_equal(
            sparse_adjacency(g).toarray(), g.dense_adjacency()
        )

    def test_sparse_normalized_matches_dense(self):
        g = _sample_graph()
        sparse = sparse_normalized_adjacency(g).toarray()
        dense = g.normalized_adjacency()
        assert np.allclose(sparse, dense)

    def test_no_self_loops_variant(self):
        g = _sample_graph()
        sparse = sparse_normalized_adjacency(g, add_self_loops=False).toarray()
        dense = g.normalized_adjacency(add_self_loops=False)
        assert np.allclose(sparse, dense)

    def test_isolated_node_no_nan(self):
        g = Graph(3, [(0, 1), (1, 0)])
        sparse = sparse_normalized_adjacency(g, add_self_loops=False)
        assert np.all(np.isfinite(sparse.toarray()))
