"""Unit and property tests for graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    MotifSpec,
    barabasi_albert_graph,
    erdos_renyi_graph,
    motif_soup_graph,
    random_graph,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        rng = np.random.default_rng(0)
        g = erdos_renyi_graph(20, 30, rng)
        assert g.num_undirected_edges == 30

    def test_edge_count_clamped_to_max(self):
        rng = np.random.default_rng(0)
        g = erdos_renyi_graph(4, 100, rng)
        assert g.num_undirected_edges == 6

    def test_no_self_loops(self):
        rng = np.random.default_rng(1)
        g = erdos_renyi_graph(15, 40, rng)
        assert not np.any(g.src == g.dst)

    def test_deterministic_given_seed(self):
        g1 = erdos_renyi_graph(10, 15, np.random.default_rng(7))
        g2 = erdos_renyi_graph(10, 15, np.random.default_rng(7))
        assert g1 == g2

    @given(n=st.integers(2, 30), e=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_property_valid_graph(self, n, e):
        g = erdos_renyi_graph(n, e, np.random.default_rng(0))
        assert g.num_nodes == n
        assert g.num_undirected_edges == min(e, n * (n - 1) // 2)
        if g.num_edges:
            assert g.src.max() < n
            assert g.dst.max() < n


class TestBarabasiAlbert:
    def test_node_count(self):
        g = barabasi_albert_graph(30, 2, np.random.default_rng(0))
        assert g.num_nodes == 30

    def test_attach_bound(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 3, np.random.default_rng(0))

    def test_hub_formation(self):
        # Preferential attachment should produce a skewed degree distribution.
        g = barabasi_albert_graph(200, 2, np.random.default_rng(0))
        degrees = g.in_degree()
        assert degrees.max() > 3 * np.median(degrees)


class TestRandomGraph:
    def test_expected_degree(self):
        rng = np.random.default_rng(0)
        g = random_graph(1000, 8.0, rng)
        mean_degree = 2.0 * g.num_undirected_edges / g.num_nodes
        assert mean_degree == pytest.approx(8.0, rel=0.05)


class TestMotifSoup:
    def test_copy_counts(self):
        rng = np.random.default_rng(0)
        g = motif_soup_graph(
            [MotifSpec("ring", 5, copies=3)], random_nodes=0, random_edges=0, rng=rng
        )
        assert g.num_nodes == 15
        assert g.num_undirected_edges == 15

    def test_motif_copies_are_isomorphic_components(self):
        rng = np.random.default_rng(0)
        g = motif_soup_graph(
            [MotifSpec("star", 6, copies=2)], random_nodes=0, random_edges=0, rng=rng
        )
        first = {(u, v) for u, v in g.undirected_edge_set() if u < 6 and v < 6}
        second = {
            (u - 6, v - 6) for u, v in g.undirected_edge_set() if u >= 6 and v >= 6
        }
        assert first == second

    def test_random_component_appended(self):
        rng = np.random.default_rng(0)
        g = motif_soup_graph(
            [MotifSpec("ring", 4, copies=1)], random_nodes=10, random_edges=12, rng=rng
        )
        assert g.num_nodes == 14
        assert g.num_undirected_edges == 4 + 12

    def test_labels_shared_across_copies(self):
        rng = np.random.default_rng(3)
        g = motif_soup_graph(
            [MotifSpec("path", 4, copies=2)],
            random_nodes=0,
            random_edges=0,
            rng=rng,
            num_labels=3,
        )
        assert np.array_equal(g.node_features[:4], g.node_features[4:8])

    def test_bridges_connect_motifs_to_random_part(self):
        rng = np.random.default_rng(0)
        g = motif_soup_graph(
            [MotifSpec("ring", 4, copies=2)],
            random_nodes=5,
            random_edges=4,
            rng=rng,
            bridge_fraction=1.0,
        )
        # 2 ring copies * 4 edges + 4 random + 2 bridges
        assert g.num_undirected_edges == 8 + 4 + 2

    def test_unknown_motif_rejected(self):
        with pytest.raises(KeyError):
            MotifSpec("nonagon", 9, copies=1)

    def test_zero_copies_rejected(self):
        with pytest.raises(ValueError):
            MotifSpec("ring", 5, copies=0)
