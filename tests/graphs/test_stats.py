"""Tests for graph statistics."""

import numpy as np
import pytest

from repro.graphs import Graph, dataset_profile, graph_profile


class TestGraphProfile:
    def test_ring_profile(self):
        g = Graph.from_undirected_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        profile = graph_profile(g)
        assert profile["num_nodes"] == 6
        assert profile["num_edges"] == 6
        assert profile["mean_degree"] == pytest.approx(2.0)
        assert profile["degree_std"] == pytest.approx(0.0)
        assert profile["num_components"] == 1
        assert profile["clustering"] == pytest.approx(0.0)

    def test_triangle_clustering(self):
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert graph_profile(g)["clustering"] == pytest.approx(1.0)

    def test_components_counted(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (2, 3)])
        assert graph_profile(g)["num_components"] == 2

    def test_star_max_degree(self):
        g = Graph.from_undirected_edges(5, [(0, i) for i in range(1, 5)])
        profile = graph_profile(g)
        assert profile["max_degree"] == 4
        assert profile["wl_unique_fraction"] == pytest.approx(2 / 5)


class TestDatasetProfile:
    def test_averages_over_sample(self):
        rings = [
            Graph.from_undirected_edges(n, [(i, (i + 1) % n) for i in range(n)])
            for n in (4, 6, 8)
        ]
        profile = dataset_profile(rings)
        assert profile["num_nodes"] == pytest.approx(6.0)
        assert profile["mean_degree"] == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dataset_profile([])
