"""Tests for the dataset registry (Table II substitutes)."""

import numpy as np
import pytest

from repro.graphs import DATASET_NAMES, DATASETS, generate_graph, load_dataset


class TestRegistry:
    def test_six_datasets(self):
        assert len(DATASETS) == 6
        assert set(DATASET_NAMES) == {
            "AIDS",
            "COLLAB",
            "GITHUB",
            "RD-B",
            "RD-5K",
            "RD-12K",
        }

    def test_table2_pair_counts(self):
        assert DATASETS["AIDS"].num_pairs == 200
        assert DATASETS["COLLAB"].num_pairs == 500
        assert DATASETS["GITHUB"].num_pairs == 1273
        assert DATASETS["RD-B"].num_pairs == 200
        assert DATASETS["RD-5K"].num_pairs == 500
        assert DATASETS["RD-12K"].num_pairs == 1193

    def test_scale_classes(self):
        assert DATASETS["AIDS"].scale_class == "small"
        assert DATASETS["RD-5K"].scale_class == "large"


class TestGenerateGraph:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_average_node_count_tracks_table2(self, name):
        rng = np.random.default_rng(0)
        sizes = [generate_graph(name, rng).num_nodes for _ in range(15)]
        target = DATASETS[name].avg_nodes
        assert np.mean(sizes) == pytest.approx(target, rel=0.25)

    @pytest.mark.parametrize("name", ["AIDS", "GITHUB", "RD-B", "RD-5K", "RD-12K"])
    def test_average_edge_count_tracks_table2(self, name):
        # COLLAB is intentionally sparser than the real dataset; see the
        # module docstring in repro.graphs.datasets.
        rng = np.random.default_rng(0)
        edges = [generate_graph(name, rng).num_undirected_edges for _ in range(15)]
        target = DATASETS[name].avg_edges
        assert np.mean(edges) == pytest.approx(target, rel=0.35)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("IMDB")

    def test_jitter_produces_varied_sizes(self):
        rng = np.random.default_rng(0)
        sizes = {generate_graph("RD-B", rng).num_nodes for _ in range(10)}
        assert len(sizes) > 1


class TestLoadDataset:
    def test_num_pairs_respected(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=8)
        assert len(pairs) == 8

    def test_alternating_labels(self):
        pairs = load_dataset("AIDS", seed=0, num_pairs=6)
        assert [p.label for p in pairs] == [1, 0, 1, 0, 1, 0]

    def test_deterministic_given_seed(self):
        a = load_dataset("GITHUB", seed=3, num_pairs=4)
        b = load_dataset("GITHUB", seed=3, num_pairs=4)
        assert all(pa.target == pb.target for pa, pb in zip(a, b))
        assert all(pa.query == pb.query for pa, pb in zip(a, b))

    def test_different_seeds_differ(self):
        a = load_dataset("GITHUB", seed=3, num_pairs=2)
        b = load_dataset("GITHUB", seed=4, num_pairs=2)
        assert any(pa.target != pb.target for pa, pb in zip(a, b))

    def test_positive_pair_is_small_perturbation(self):
        pairs = load_dataset("RD-B", seed=0, num_pairs=2)
        positive = pairs[0]
        diff = positive.target.undirected_edge_set() ^ positive.query.undirected_edge_set()
        assert len(diff) <= 2  # one removed + one added

    def test_default_num_pairs_is_table2(self):
        pairs = load_dataset("AIDS", seed=0)
        assert len(pairs) == 200


class TestRegisterDataset:
    def _spec(self, name="TINY"):
        from repro.graphs import DatasetSpec
        from repro.graphs.generators import erdos_renyi_graph

        def builder(rng, scale):
            return erdos_renyi_graph(6, 8, rng)

        return DatasetSpec(name, 6.0, 8.0, 10, "small", builder)

    def test_registered_dataset_loads(self):
        from repro.graphs import DATASETS, load_dataset, register_dataset

        register_dataset(self._spec("TINY-A"))
        try:
            pairs = load_dataset("TINY-A", seed=0, num_pairs=4)
            assert len(pairs) == 4
            assert pairs[0].target.num_nodes == 6
        finally:
            del DATASETS["TINY-A"]
            from repro.graphs.datasets import DATASET_NAMES

            DATASET_NAMES.remove("TINY-A")

    def test_overwrite_protection(self):
        from repro.graphs import register_dataset

        with pytest.raises(ValueError):
            register_dataset(self._spec("AIDS"))

    def test_type_checked(self):
        from repro.graphs import register_dataset

        with pytest.raises(TypeError):
            register_dataset("not a spec")
