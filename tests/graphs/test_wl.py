"""Tests for WL refinement and its equivalence with EMF duplicates."""

import numpy as np
import pytest

from repro.emf import elastic_matching_filter
from repro.graphs import Graph, load_dataset
from repro.graphs.wl import (
    predicted_remaining_matching,
    unique_color_fraction,
    wl_colors,
)
from repro.models import GraphSim


class TestWlColors:
    def test_ring_collapses_to_one_color(self):
        g = Graph.from_undirected_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        colors = wl_colors(g, rounds=3)[-1]
        assert len(set(colors.tolist())) == 1

    def test_star_has_two_colors(self):
        g = Graph.from_undirected_edges(6, [(0, i) for i in range(1, 6)])
        colors = wl_colors(g, rounds=3)[-1]
        assert len(set(colors.tolist())) == 2
        assert colors[0] != colors[1]
        assert len(set(colors[1:].tolist())) == 1

    def test_path_mirror_symmetry(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        colors = wl_colors(g, rounds=3)[-1]
        assert colors[0] == colors[3]
        assert colors[1] == colors[2]
        assert colors[0] != colors[1]

    def test_initial_features_split_colors(self):
        features = np.array([[0.0], [1.0], [0.0]])
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 2)], features)
        colors = wl_colors(g, rounds=1)[-1]
        # Nodes 0 and 2 have identical features and symmetric positions.
        assert colors[0] == colors[2]
        assert colors[0] != colors[1]

    def test_zero_rounds(self):
        g = Graph.from_undirected_edges(3, [(0, 1)])
        assert wl_colors(g, rounds=0) == []

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            wl_colors(Graph(1, []), rounds=-1)

    def test_refinement_is_monotone(self):
        """Color classes only split across rounds, never merge."""
        rng = np.random.default_rng(0)
        from repro.graphs import erdos_renyi_graph

        g = erdos_renyi_graph(20, 30, rng)
        history = wl_colors(g, rounds=4)
        counts = [len(set(c.tolist())) for c in history]
        assert counts == sorted(counts)

    def test_bit_identical_nan_rows_share_a_color(self):
        """Regression: initial colors keyed rows by ``tuple(row)``,
        under which two bit-identical NaN rows compare (and on
        Python >= 3.10 hash) unequal, splitting a duplicate class the
        EMF's byte-keyed method keeps together."""
        features = np.array([[np.nan, 1.0], [np.nan, 1.0], [0.0, 1.0]])
        g = Graph.from_undirected_edges(3, [], features)
        colors = wl_colors(g, rounds=1)[-1]
        assert colors[0] == colors[1]
        assert colors[0] != colors[2]


class TestEmfEquivalence:
    """Two nodes share a GNN feature vector at layer l iff they share a
    WL color after l rounds — the theoretical basis of both the EMF and
    our dataset calibration."""

    @pytest.mark.parametrize("dataset", ["AIDS", "GITHUB"])
    def test_wl_bounds_emf_unique_counts(self, dataset):
        """GCN layer l outputs refine between WL round l+1 and l+2: the
        symmetric degree normalization (D^-1/2 A D^-1/2) leaks the
        neighbors' degrees, one extra round of WL information."""
        pairs = load_dataset(dataset, seed=0, num_pairs=2)
        model = GraphSim(input_dim=pairs[0].target.feature_dim)
        for pair in pairs:
            trace = model.forward_pair(pair)
            history = wl_colors(pair.target, len(trace.layers) + 2)
            for layer in trace.layers:
                measured = elastic_matching_filter(
                    layer.target_features
                ).num_unique
                lower = len(set(history[layer.layer_index].tolist()))
                upper = len(set(history[layer.layer_index + 1].tolist()))
                assert lower <= measured <= upper

    def test_predicted_remaining_matches_plan(self):
        pairs = load_dataset("GITHUB", seed=1, num_pairs=2)
        model = GraphSim(input_dim=pairs[0].target.feature_dim)
        from repro.emf import MatchingPlan

        for pair in pairs:
            trace = model.forward_pair(pair)
            layer = trace.layers[-1]
            plan = MatchingPlan.from_features(
                layer.target_features, layer.query_features
            )
            # At convergence (WL stabilizes within a few rounds on these
            # graphs) the topology-only prediction matches exactly.
            predicted = predicted_remaining_matching(pair, rounds=5)
            assert predicted == pytest.approx(plan.remaining_fraction)


class TestWlColorHashes:
    def test_round_zero_is_the_emf_tag_set(self):
        from repro.emf.xxhash import hash_feature_matrix
        from repro.graphs.wl import wl_color_hashes

        features = np.array([[0.5], [0.5], [1.5]])
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 2)], features)
        history = wl_color_hashes(g, rounds=2)
        assert len(history) == 3
        np.testing.assert_array_equal(
            history[0], hash_feature_matrix(features).astype(np.uint64)
        )

    def test_canonical_across_graph_rebuilds(self):
        """Equal graphs hash equal node streams — no graph-local state
        leaks into the values (the property ``wl_colors`` palettes
        lack, and the one the search sketches rely on)."""
        from repro.graphs import erdos_renyi_graph
        from repro.graphs.wl import wl_color_hashes

        g = erdos_renyi_graph(12, 20, np.random.default_rng(4))
        clone = Graph(
            g.num_nodes,
            list(zip(g.src.tolist(), g.dst.tolist())),
            g.node_features.copy(),
        )
        for ours, theirs in zip(
            wl_color_hashes(g, rounds=3), wl_color_hashes(clone, rounds=3)
        ):
            np.testing.assert_array_equal(ours, theirs)

    def test_refinement_tracks_wl_colors(self):
        """Two nodes share a round-r hash iff they share a round-r WL
        color (initial colors being feature rows in both)."""
        from repro.graphs import erdos_renyi_graph
        from repro.graphs.wl import wl_color_hashes

        g = erdos_renyi_graph(15, 25, np.random.default_rng(5))
        hash_history = wl_color_hashes(g, rounds=3)[1:]
        color_history = wl_colors(g, rounds=3)
        for hashes, colors in zip(hash_history, color_history):
            by_color = {}
            for node in range(g.num_nodes):
                by_color.setdefault(int(colors[node]), set()).add(
                    int(hashes[node])
                )
            hash_sets = list(by_color.values())
            assert all(len(s) == 1 for s in hash_sets)
            assert len({s.pop() for s in hash_sets}) == len(by_color)

    def test_empty_graph(self):
        from repro.graphs.wl import wl_color_hashes

        history = wl_color_hashes(Graph(0, []), rounds=2)
        assert [len(h) for h in history] == [0, 0, 0]

    def test_negative_rounds_rejected(self):
        from repro.graphs.wl import wl_color_hashes

        with pytest.raises(ValueError):
            wl_color_hashes(Graph(1, []), rounds=-1)


class TestUniqueFraction:
    def test_empty_graph(self):
        assert unique_color_fraction(Graph(0, [])) == 1.0

    def test_zero_rounds_reports_distinct_feature_rows(self):
        """Regression: ``rounds=0`` used to collapse to one color and
        report ``1/n`` instead of the pre-refinement palette."""
        features = np.array([[0.0], [0.0], [1.0]])
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 2)], features)
        assert unique_color_fraction(g, rounds=0) == pytest.approx(2 / 3)

    def test_all_unique_path_of_two(self):
        g = Graph.from_undirected_edges(2, [(0, 1)])
        assert unique_color_fraction(g) == pytest.approx(0.5)

    def test_dataset_calibration_anchor(self):
        """The generator calibration target: RD-5K graphs are far more
        duplicate-heavy than AIDS graphs."""
        aids = load_dataset("AIDS", seed=0, num_pairs=2)
        rd5k = load_dataset("RD-5K", seed=0, num_pairs=2)
        assert unique_color_fraction(rd5k[0].target) < unique_color_fraction(
            aids[0].target
        )
