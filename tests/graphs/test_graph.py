"""Unit tests for the core Graph data structure."""

import numpy as np
import pytest

from repro.graphs import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_no_edges(self):
        g = Graph(3, [])
        assert g.num_nodes == 3
        assert g.num_edges == 0
        assert g.node_features.shape == (3, 1)

    def test_default_features_are_ones(self):
        g = Graph(4, [(0, 1)])
        assert np.array_equal(g.node_features, np.ones((4, 1)))

    def test_directed_edges_stored_as_given(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 2)])
        with pytest.raises(ValueError):
            Graph(2, [(-1, 0)])

    def test_bad_feature_shape_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [], node_features=np.ones((2, 4)))

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1, 2)])


class TestUndirectedConstruction:
    def test_both_directions_stored(self):
        g = Graph.from_undirected_edges(3, [(0, 1)])
        assert g.num_edges == 2
        assert g.num_undirected_edges == 1
        assert set(map(tuple, g.edge_list().tolist())) == {(0, 1), (1, 0)}

    def test_duplicate_edges_removed(self):
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_undirected_edges == 1

    def test_self_loops_removed(self):
        g = Graph.from_undirected_edges(3, [(1, 1), (0, 2)])
        assert g.num_undirected_edges == 1


class TestAdjacency:
    def test_dense_adjacency_roundtrip(self):
        adjacency = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        g = Graph.from_dense_adjacency(adjacency)
        assert np.array_equal(g.dense_adjacency(), adjacency.astype(float))

    def test_dense_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            Graph.from_dense_adjacency(np.zeros((2, 3)))

    def test_in_neighbors_csr(self):
        g = Graph(4, [(0, 2), (1, 2), (3, 2), (2, 0)])
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1, 3]
        assert g.in_neighbors(0).tolist() == [2]
        assert g.in_neighbors(1).tolist() == []

    def test_degrees(self):
        g = Graph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degree().tolist() == [2, 1, 0]
        assert g.in_degree().tolist() == [0, 1, 2]

    def test_normalized_adjacency_symmetric_for_undirected(self):
        g = Graph.from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)])
        norm = g.normalized_adjacency()
        assert np.allclose(norm, norm.T)

    def test_normalized_adjacency_rows_bounded(self):
        g = Graph.from_undirected_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        norm = g.normalized_adjacency()
        # D^-1/2 (A+I) D^-1/2 has spectral radius <= 1
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_isolated_node_normalization_no_nan(self):
        g = Graph(3, [(0, 1), (1, 0)])
        norm = g.normalized_adjacency(add_self_loops=False)
        assert np.all(np.isfinite(norm))


class TestViewsAndTransforms:
    def test_with_features(self):
        g = Graph.from_undirected_edges(3, [(0, 1)])
        feats = np.arange(6, dtype=float).reshape(3, 2)
        g2 = g.with_features(feats)
        assert g2.feature_dim == 2
        assert g2.num_edges == g.num_edges
        assert np.array_equal(g2.node_features, feats)

    def test_copy_is_deep_for_features(self):
        g = Graph(2, [(0, 1)])
        g2 = g.copy()
        g2.node_features[0, 0] = 42.0
        assert g.node_features[0, 0] == 1.0

    def test_undirected_edge_set_canonical(self):
        g = Graph(3, [(1, 0), (0, 1), (2, 1)])
        assert g.undirected_edge_set() == {(0, 1), (1, 2)}

    def test_equality_and_hash(self):
        g1 = Graph.from_undirected_edges(3, [(0, 1)])
        g2 = Graph.from_undirected_edges(3, [(0, 1)])
        g3 = Graph.from_undirected_edges(3, [(0, 2)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3
        assert g1 != "not a graph"
