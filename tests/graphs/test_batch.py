"""Tests for batched graph pairs and the global adjacency matrix (Fig. 15)."""

import numpy as np
import pytest

from repro.graphs import Graph, GraphPair, GraphPairBatch, make_batches


def _pair(n_target, n_query, label=None):
    target = Graph.from_undirected_edges(
        n_target, [(i, i + 1) for i in range(n_target - 1)]
    )
    query = Graph.from_undirected_edges(
        n_query, [(i, (i + 1) % n_query) for i in range(n_query)]
    )
    return GraphPair(target, query, label)


class TestBatchIndexing:
    def test_offsets_follow_fig15_layout(self):
        batch = GraphPairBatch([_pair(3, 4), _pair(5, 2)])
        assert batch.target_offsets == [0, 3]
        assert batch.num_target_nodes == 8
        assert batch.query_offsets == [8, 12]
        assert batch.num_query_nodes == 6
        assert batch.total_nodes == 14

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            GraphPairBatch([])

    def test_matching_pair_count(self):
        batch = GraphPairBatch([_pair(3, 4), _pair(5, 2)])
        assert batch.num_matching_pairs == 3 * 4 + 5 * 2

    def test_intra_edge_count(self):
        p = _pair(3, 4)
        batch = GraphPairBatch([p])
        assert batch.num_intra_edges == p.target.num_edges + p.query.num_edges


class TestGlobalAdjacency:
    def test_block_structure(self):
        batch = GraphPairBatch([_pair(3, 4), _pair(5, 2)])
        matrix = batch.global_adjacency()
        nt = batch.num_target_nodes
        # Top-left block: target intra edges only (values 0/1).
        assert set(np.unique(matrix[:nt, :nt])) <= {0, 1}
        # Bottom-right block: query intra edges only.
        assert set(np.unique(matrix[nt:, nt:])) <= {0, 1}
        # Bottom-left block must be empty.
        assert np.all(matrix[nt:, :nt] == 0)

    def test_matching_blocks_are_pair_diagonal(self):
        batch = GraphPairBatch([_pair(3, 4), _pair(5, 2)])
        matrix = batch.global_adjacency()
        nt = batch.num_target_nodes
        cross = matrix[:nt, nt:]
        # Pair 0: rows 0-2 x cols 0-3 marked as matching (value 2).
        assert np.all(cross[0:3, 0:4] == 2)
        # Off-diagonal pair blocks must be empty (no cross-pair matching).
        assert np.all(cross[0:3, 4:6] == 0)
        assert np.all(cross[3:8, 0:4] == 0)
        assert np.all(cross[3:8, 4:6] == 2)

    def test_matching_mask_matches_adjacency(self):
        batch = GraphPairBatch([_pair(3, 4), _pair(2, 2)])
        matrix = batch.global_adjacency()
        nt = batch.num_target_nodes
        assert np.array_equal(matrix[:nt, nt:] == 2, batch.global_matching_mask())

    def test_intra_edges_present(self):
        p = _pair(3, 3)
        matrix = GraphPairBatch([p]).global_adjacency()
        target_block = matrix[:3, :3]
        assert target_block.sum() == p.target.num_edges


class TestStackedFeatures:
    def test_target_feature_stack_shape(self):
        batch = GraphPairBatch([_pair(3, 4), _pair(5, 2)])
        assert batch.stacked_target_features().shape == (8, 1)
        assert batch.stacked_query_features().shape == (6, 1)


class TestMakeBatches:
    def test_even_split(self):
        pairs = [_pair(3, 3) for _ in range(6)]
        batches = make_batches(pairs, 2)
        assert [b.batch_size for b in batches] == [2, 2, 2]

    def test_ragged_tail(self):
        pairs = [_pair(3, 3) for _ in range(5)]
        batches = make_batches(pairs, 2)
        assert [b.batch_size for b in batches] == [2, 2, 1]

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            make_batches([_pair(2, 2)], 0)
