"""Unit tests for motif builders."""

import pytest

from repro.graphs.motifs import (
    MOTIF_BUILDERS,
    binary_tree,
    clique,
    ladder,
    motif_edges,
    path,
    ring,
    star,
    wheel,
)


def _degree_counts(num_nodes, edges):
    degrees = [0] * num_nodes
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees


class TestMotifShapes:
    def test_ring_edge_count(self):
        assert len(ring(5)) == 5

    def test_ring_all_degree_two(self):
        assert _degree_counts(6, ring(6)) == [2] * 6

    def test_star_hub_degree(self):
        degrees = _degree_counts(5, star(5))
        assert degrees[0] == 4
        assert degrees[1:] == [1, 1, 1, 1]

    def test_clique_edge_count(self):
        assert len(clique(6)) == 15

    def test_path_structure(self):
        assert path(4) == [(0, 1), (1, 2), (2, 3)]

    def test_binary_tree_node_and_edge_counts(self):
        edges = binary_tree(3)
        assert len(edges) == 2**4 - 2  # nodes - 1

    def test_wheel_hub_connected_to_rim(self):
        edges = wheel(5)
        degrees = _degree_counts(5, edges)
        assert degrees[0] == 4
        assert all(d == 3 for d in degrees[1:])

    def test_ladder_edge_count(self):
        # rungs + 2*(rungs-1) rails
        assert len(ladder(4)) == 4 + 2 * 3


class TestMotifValidation:
    @pytest.mark.parametrize(
        "builder,too_small",
        [(ring, 2), (star, 1), (clique, 1), (path, 1), (binary_tree, 0), (wheel, 3), (ladder, 1)],
    )
    def test_too_small_rejected(self, builder, too_small):
        with pytest.raises(ValueError):
            builder(too_small)

    def test_motif_edges_unknown_name(self):
        with pytest.raises(KeyError):
            motif_edges("triforce", 3)

    @pytest.mark.parametrize("name", sorted(MOTIF_BUILDERS))
    def test_motif_edges_within_bounds(self, name):
        parameter = 4
        num_nodes, edges = motif_edges(name, parameter)
        for u, v in edges:
            assert 0 <= u < num_nodes
            assert 0 <= v < num_nodes

    def test_binary_tree_size_accounts_for_depth(self):
        num_nodes, _ = motif_edges("binary_tree", 3)
        assert num_nodes == 15

    def test_ladder_size_accounts_for_rungs(self):
        num_nodes, _ = motif_edges("ladder", 5)
        assert num_nodes == 10


class TestNewMotifs:
    def test_grid_counts(self):
        from repro.graphs.motifs import grid, motif_edges

        edges = grid(3)
        # 3x3 grid: 2*3*(3-1) = 12 edges.
        assert len(edges) == 12
        num_nodes, _ = motif_edges("grid", 3)
        assert num_nodes == 9

    def test_grid_corner_degree(self):
        from repro.graphs.motifs import grid

        degrees = _degree_counts(9, grid(3))
        assert degrees[0] == 2  # corner
        assert degrees[4] == 4  # center

    def test_complete_bipartite(self):
        from repro.graphs.motifs import complete_bipartite, motif_edges

        edges = complete_bipartite(3)
        assert len(edges) == 9
        degrees = _degree_counts(6, edges)
        assert all(d == 3 for d in degrees)
        num_nodes, _ = motif_edges("complete_bipartite", 3)
        assert num_nodes == 6

    def test_caterpillar(self):
        from repro.graphs.motifs import caterpillar, motif_edges

        edges = caterpillar(4)
        # 3 spine edges + 4 leaf edges.
        assert len(edges) == 7
        num_nodes, _ = motif_edges("caterpillar", 4)
        assert num_nodes == 8

    @pytest.mark.parametrize(
        "name,bad", [("grid", 1), ("complete_bipartite", 0), ("caterpillar", 1)]
    )
    def test_validation(self, name, bad):
        from repro.graphs.motifs import MOTIF_BUILDERS

        with pytest.raises(ValueError):
            MOTIF_BUILDERS[name](bad)
