"""Tests for graph-pair construction by edge substitution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    erdos_renyi_graph,
    make_pair,
    make_positive_negative_pairs,
    substitute_edges,
)


def _sample_graph(seed=0, n=12, e=18):
    return erdos_renyi_graph(n, e, np.random.default_rng(seed))


class TestSubstituteEdges:
    def test_preserves_counts(self):
        g = _sample_graph()
        g2 = substitute_edges(g, 3, np.random.default_rng(1))
        assert g2.num_nodes == g.num_nodes
        assert g2.num_undirected_edges == g.num_undirected_edges

    def test_zero_substitutions_identity(self):
        g = _sample_graph()
        g2 = substitute_edges(g, 0, np.random.default_rng(1))
        assert g2.undirected_edge_set() == g.undirected_edge_set()

    def test_changes_edge_set(self):
        g = _sample_graph()
        g2 = substitute_edges(g, 4, np.random.default_rng(1))
        assert g2.undirected_edge_set() != g.undirected_edge_set()

    def test_at_most_n_edges_differ(self):
        g = _sample_graph()
        n_subs = 2
        g2 = substitute_edges(g, n_subs, np.random.default_rng(2))
        removed = g.undirected_edge_set() - g2.undirected_edge_set()
        added = g2.undirected_edge_set() - g.undirected_edge_set()
        assert len(removed) <= n_subs
        assert len(added) <= n_subs

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            substitute_edges(_sample_graph(), -1, np.random.default_rng(0))

    def test_features_preserved(self):
        feats = np.random.default_rng(0).normal(size=(12, 4))
        g = _sample_graph().with_features(feats)
        g2 = substitute_edges(g, 2, np.random.default_rng(3))
        assert np.array_equal(g2.node_features, feats)

    def test_complete_graph_cannot_substitute(self):
        g = Graph.from_undirected_edges(3, [(0, 1), (1, 2), (0, 2)])
        g2 = substitute_edges(g, 2, np.random.default_rng(0))
        # No non-adjacent pair exists; substitution is a no-op.
        assert g2.undirected_edge_set() == g.undirected_edge_set()

    @given(subs=st.integers(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_no_self_loops_or_duplicates(self, subs):
        g = _sample_graph(seed=subs)
        g2 = substitute_edges(g, subs, np.random.default_rng(subs + 1))
        edges = g2.undirected_edge_set()
        assert all(u != v for u, v in edges)
        assert len(edges) == g.num_undirected_edges


class TestMakePair:
    def test_positive_label(self):
        pair = make_pair(_sample_graph(), np.random.default_rng(0), similar=True)
        assert pair.label == 1

    def test_negative_label(self):
        pair = make_pair(_sample_graph(), np.random.default_rng(0), similar=False)
        assert pair.label == 0

    def test_positive_differs_by_at_most_one_edge(self):
        g = _sample_graph()
        pair = make_pair(g, np.random.default_rng(0), similar=True)
        removed = g.undirected_edge_set() - pair.query.undirected_edge_set()
        assert len(removed) <= 1

    def test_pair_properties(self):
        g = _sample_graph()
        pair = make_pair(g, np.random.default_rng(0), similar=True)
        assert pair.total_nodes == 2 * g.num_nodes
        assert pair.num_matching_pairs == g.num_nodes**2

    def test_make_positive_negative(self):
        pos, neg = make_positive_negative_pairs(
            _sample_graph(), np.random.default_rng(0)
        )
        assert pos.label == 1
        assert neg.label == 0
        assert pos.target == neg.target
