"""Round-trip tests for the schema-versioned payloads: HardwareConfig,
PlatformResult, and the on-disk results artifacts."""

import json

import pytest

from repro.experiments.common import workload_traces
from repro.platforms import (
    ARTIFACT_SCHEMA_VERSION,
    REGISTRY,
    RunSpec,
    default_artifact_path,
    load_results,
    results_payload,
    save_results,
)
from repro.sim.config import (
    HardwareConfig,
    awbgcn_config,
    cegma_cgc_only_config,
    cegma_config,
    cegma_emf_only_config,
    hygcn_config,
)
from repro.sim.engine import (
    RESULT_SCHEMA_VERSION,
    AcceleratorSimulator,
    PlatformResult,
)

STOCK_CONFIGS = (
    cegma_config,
    cegma_emf_only_config,
    cegma_cgc_only_config,
    hygcn_config,
    awbgcn_config,
)


@pytest.fixture(scope="module")
def traces():
    return list(workload_traces("GMN-Li", "AIDS", 4, 2, 0))


class TestHardwareConfigRoundTrip:
    @pytest.mark.parametrize(
        "factory", STOCK_CONFIGS, ids=lambda f: f.__name__
    )
    def test_to_dict_from_dict_equality(self, factory):
        config = factory()
        restored = HardwareConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.to_dict() == config.to_dict()

    @pytest.mark.parametrize(
        "factory", STOCK_CONFIGS, ids=lambda f: f.__name__
    )
    def test_survives_json(self, factory):
        config = factory()
        payload = json.loads(json.dumps(config.to_dict()))
        assert HardwareConfig.from_dict(payload) == config

    def test_equality_is_field_sensitive(self):
        other = cegma_config()
        other.mac_units += 1
        assert other != cegma_config()


class TestPlatformResultRoundTrip:
    def test_simulated_result(self, traces):
        result = AcceleratorSimulator(cegma_config()).simulate_batches(traces)
        payload = result.to_dict()
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        restored = PlatformResult.from_dict(json.loads(json.dumps(payload)))
        assert restored.to_dict() == payload
        assert restored.cycles == result.cycles
        assert restored.num_pairs == result.num_pairs
        assert restored.latency_per_pair == result.latency_per_pair
        assert restored.energy_components == result.energy_components
        assert restored.layer_stats == result.layer_stats

    def test_merged_result(self, traces):
        simulator = AcceleratorSimulator(cegma_config())
        merged = simulator.simulate_batches(traces[:1])
        merged.merge(simulator.simulate_batches(traces[1:]))
        whole = simulator.simulate_batches(traces)
        restored = PlatformResult.from_dict(merged.to_dict())
        assert restored.cycles == whole.cycles
        assert restored.num_pairs == whole.num_pairs
        assert restored.layer_stats == whole.layer_stats

    def test_unknown_schema_version_rejected(self, traces):
        result = AcceleratorSimulator(cegma_config()).simulate_batches(traces)
        payload = result.to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            PlatformResult.from_dict(payload)

    def test_mutating_round_trip_dicts_is_safe(self, traces):
        result = AcceleratorSimulator(cegma_config()).simulate_batches(traces)
        payload = result.to_dict()
        payload["energy_components"]["dram"] = -1.0
        assert result.energy_components.get("dram", 0.0) >= 0.0


class TestArtifacts:
    def _results(self, traces):
        from repro.core.api import simulate_traces

        return simulate_traces(traces, ("CEGMA", "CEGMA@bandwidth_gbps=512"))

    def test_save_load_round_trip(self, traces, tmp_path):
        results = self._results(traces)
        spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)
        path = save_results(results, tmp_path / "results" / "r.json", spec=spec)
        assert path.exists()
        loaded, loaded_spec = load_results(path)
        assert loaded_spec == spec
        assert set(loaded) == set(results)
        for platform in results:
            assert loaded[platform].to_dict() == results[platform].to_dict()

    def test_payload_schema_version(self, traces):
        payload = results_payload(self._results(traces))
        assert payload["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert payload["run_spec"] is None

    def test_unknown_artifact_version_rejected(self, traces, tmp_path):
        path = tmp_path / "r.json"
        payload = results_payload(self._results(traces))
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            load_results(path)

    def test_default_artifact_path_uses_stem(self):
        spec = RunSpec.make("GMN-Li", "AIDS", 4, 2, 0)
        path = default_artifact_path(spec)
        assert path.parts[0] == "results"
        assert path.name == f"{spec.stem}.json"

    def test_spec_platform_results_reload(self, traces, tmp_path):
        """Results simulated from a derived spec keep a canonical
        platform name through the artifact round trip."""
        spec_string = "CEGMA@bandwidth_gbps=512"
        results = self._results(traces)
        path = save_results(results, tmp_path / "r.json")
        loaded, _ = load_results(path)
        assert loaded[spec_string].platform == REGISTRY.canonical(spec_string)
