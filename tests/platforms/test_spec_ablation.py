"""The spec-string sweeps must reproduce hand-mutated-config sweeps
bit-identically — the registry is a refactor, not a remodel."""

import pytest

from repro.experiments import ablation_bandwidth, ablation_buffer_sweep
from repro.experiments.common import clear_workload_caches, workload_traces
from repro.sim.config import awbgcn_config, cegma_config
from repro.sim.engine import AcceleratorSimulator


@pytest.fixture(autouse=True)
def _fresh_memos(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    clear_workload_caches()
    yield
    clear_workload_caches()


def _hand_built(config_factory, **fields):
    config = config_factory()
    for name, value in fields.items():
        setattr(config, name, value)
    return AcceleratorSimulator(config)


class TestBandwidthSweepBitIdentical:
    def test_matches_hand_mutated_configs(self):
        quick_traces = list(workload_traces("GraphSim", "RD-B", 4, 4, 0))
        experiment = ablation_bandwidth.run(quick=True, seed=0)
        for bandwidth in ablation_bandwidth.BANDWIDTHS:
            cegma = _hand_built(
                cegma_config, dram_bandwidth_bytes_per_cycle=bandwidth
            ).simulate_batches(quick_traces)
            awb = _hand_built(
                awbgcn_config, dram_bandwidth_bytes_per_cycle=bandwidth
            ).simulate_batches(quick_traces)
            row = experiment.data[bandwidth]
            assert row["cegma_latency"] == cegma.latency_per_pair
            assert row["awb_latency"] == awb.latency_per_pair
            assert row["speedup"] == (
                awb.latency_seconds / cegma.latency_seconds
            )


class TestBufferSweepBitIdentical:
    def test_matches_hand_mutated_configs(self):
        quick_traces = list(workload_traces("GraphSim", "RD-B", 4, 4, 0))
        experiment = ablation_buffer_sweep.run(quick=True, seed=0)
        for size_kb in ablation_buffer_sweep.BUFFER_SIZES_KB:
            cegma = _hand_built(
                cegma_config, input_buffer_bytes=size_kb * 1024
            ).simulate_batches(quick_traces)
            awb = _hand_built(
                awbgcn_config, input_buffer_bytes=size_kb * 1024
            ).simulate_batches(quick_traces)
            row = experiment.data[size_kb]
            assert row["cegma_latency"] == cegma.latency_per_pair
            assert row["cegma_dram"] == cegma.dram_bytes / cegma.num_pairs
            assert row["awb_latency"] == awb.latency_per_pair
            assert row["awb_dram"] == awb.dram_bytes / awb.num_pairs
