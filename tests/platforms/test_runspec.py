"""Tests for the canonical workload identity (RunSpec)."""

import pytest

from repro.platforms import (
    FULL_BATCH,
    QUICK_BATCH,
    QUICK_PAIRS,
    RUNSPEC_SCHEMA_VERSION,
    RunSpec,
)


class TestMake:
    def test_quick_fidelity_derived(self):
        spec = RunSpec.make("GMN-Li", "AIDS", QUICK_PAIRS, QUICK_BATCH, 0)
        assert spec.fidelity == "quick"

    def test_full_fidelity_derived(self):
        assert RunSpec.make("GMN-Li", "AIDS", 200, FULL_BATCH).fidelity == "full"
        assert RunSpec.make("GMN-Li", "AIDS", QUICK_PAIRS, 2).fidelity == "full"

    def test_coerces_argument_types(self):
        spec = RunSpec.make("GMN-Li", "AIDS", "8", 4.0, seed="1")
        assert spec.num_pairs == 8
        assert spec.batch_size == 4
        assert spec.seed == 1

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            RunSpec.make("GMN-Li", "AIDS", 0, 4)
        with pytest.raises(ValueError):
            RunSpec.make("GMN-Li", "AIDS", 4, 0)

    def test_rejects_bad_fidelity(self):
        with pytest.raises(ValueError):
            RunSpec("GMN-Li", "AIDS", 4, 4, 0, fidelity="medium")


class TestHashing:
    def test_usable_as_dict_key(self):
        a = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)
        b = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)
        c = RunSpec.make("GMN-Li", "AIDS", 4, 4, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b, c}) == 2

    def test_frozen(self):
        spec = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0)
        with pytest.raises(AttributeError):
            spec.seed = 3


class TestSerialization:
    def test_round_trip(self):
        spec = RunSpec.make("GraphSim", "RD-B", 16, 8, 2)
        payload = spec.to_dict()
        assert payload["schema_version"] == RUNSPEC_SCHEMA_VERSION
        assert RunSpec.from_dict(payload) == spec

    def test_round_trip_through_json(self):
        import json

        spec = RunSpec.make("SimGNN", "GITHUB", 4, 4, 0)
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_unknown_schema_version_rejected(self):
        payload = RunSpec.make("GMN-Li", "AIDS", 4, 4, 0).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            RunSpec.from_dict(payload)


class TestStem:
    def test_stem_embeds_every_field(self):
        spec = RunSpec.make("GMN-Li", "AIDS", 8, 2, 3)
        assert spec.stem == "GMN-Li_AIDS_p8_b2_s3_full"

    def test_stems_distinct_per_field(self):
        base = RunSpec.make("GMN-Li", "AIDS", 8, 2, 0)
        variants = [
            RunSpec.make("GraphSim", "AIDS", 8, 2, 0),
            RunSpec.make("GMN-Li", "RD-B", 8, 2, 0),
            RunSpec.make("GMN-Li", "AIDS", 4, 2, 0),
            RunSpec.make("GMN-Li", "AIDS", 8, 4, 0),
            RunSpec.make("GMN-Li", "AIDS", 8, 2, 1),
        ]
        stems = {base.stem} | {v.stem for v in variants}
        assert len(stems) == 6
