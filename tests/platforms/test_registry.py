"""Tests for the platform registry and the spec-string grammar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import PLATFORM_BUILDERS
from repro.platforms import (
    DEFAULT_PLATFORMS,
    REGISTRY,
    PlatformRegistry,
    build_platform,
)
from repro.sim.config import cegma_config
from repro.sim.engine import AcceleratorSimulator


class _FakePlatform:
    def simulate_batches(self, batch_traces):  # pragma: no cover - stub
        raise NotImplementedError


class TestRegistration:
    def test_stock_platforms_registered(self):
        for name in DEFAULT_PLATFORMS + ("CEGMA-EMF", "CEGMA-CGC"):
            assert name in REGISTRY

    def test_direct_registration(self):
        registry = PlatformRegistry()
        registry.register("Fake", _FakePlatform)
        assert registry.names() == ["Fake"]
        assert isinstance(registry.build("Fake"), _FakePlatform)

    def test_decorator_registration(self):
        registry = PlatformRegistry()

        @registry.register("Fake")
        def build_fake():
            return _FakePlatform()

        assert "Fake" in registry
        assert isinstance(registry.build("Fake"), _FakePlatform)
        assert build_fake is not None  # decorator returns the function

    def test_accelerator_decorator_registration(self):
        registry = PlatformRegistry()

        @registry.register_accelerator("Custom")
        def custom_config():
            return cegma_config()

        simulator = registry.build("Custom@mac_units=16")
        assert isinstance(simulator, AcceleratorSimulator)
        assert simulator.config.mac_units == 16

    def test_duplicate_rejected_unless_overwrite(self):
        registry = PlatformRegistry()
        registry.register("Fake", _FakePlatform)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("Fake", _FakePlatform)
        registry.register("Fake", _FakePlatform, overwrite=True)

    def test_reserved_characters_rejected(self):
        registry = PlatformRegistry()
        for name in ("a@b", "a=b", "a,b"):
            with pytest.raises(ValueError):
                registry.register(name, _FakePlatform)

    def test_unknown_platform_error_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            REGISTRY.build("NotAPlatform")


class TestSpecParsing:
    def test_bare_name(self):
        parsed = REGISTRY.parse("CEGMA")
        assert parsed.base == "CEGMA"
        assert parsed.overrides == {}

    def test_alias_bandwidth(self):
        parsed = REGISTRY.parse("CEGMA@bandwidth_gbps=512")
        assert parsed.overrides == {"dram_bandwidth_bytes_per_cycle": 512.0}

    def test_alias_num_pes_sets_both_fields(self):
        parsed = REGISTRY.parse("CEGMA@num_pes=1024")
        assert parsed.overrides == {
            "mac_units": 1024,
            "aggregation_lanes": 1024,
        }

    def test_alias_buffer_kb(self):
        parsed = REGISTRY.parse("CEGMA@buffer_kb=256")
        assert parsed.overrides == {"input_buffer_bytes": 256 * 1024}

    def test_raw_field_and_bool(self):
        parsed = REGISTRY.parse("CEGMA@cgc_enabled=false,mac_units=64")
        assert parsed.overrides == {"cgc_enabled": False, "mac_units": 64}

    def test_whitespace_tolerated(self):
        parsed = REGISTRY.parse("CEGMA@ mac_units = 64 ")
        assert parsed.overrides == {"mac_units": 64}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            REGISTRY.parse("CEGMA@warp_drive=1")

    def test_unsettable_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            REGISTRY.parse("CEGMA@name=sneaky")

    def test_malformed_override_rejected(self):
        for spec in ("CEGMA@", "CEGMA@mac_units", "CEGMA@=64", "CEGMA@mac_units="):
            with pytest.raises(ValueError):
                REGISTRY.parse(spec)

    def test_bad_value_type_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            REGISTRY.parse("CEGMA@mac_units=lots")

    def test_software_platform_takes_no_overrides(self):
        with pytest.raises(ValueError, match="does not take spec overrides"):
            REGISTRY.parse("PyG-CPU@mac_units=1")

    def test_contains_covers_specs(self):
        assert "CEGMA@bandwidth_gbps=512" in REGISTRY
        assert "CEGMA@warp_drive=1" not in REGISTRY
        assert 42 not in REGISTRY


class TestDerivedConfigs:
    def test_config_override_applied(self):
        config = REGISTRY.config("CEGMA@bandwidth_gbps=512")
        assert config.dram_bandwidth_bytes_per_cycle == 512.0

    def test_stock_config_untouched_by_derivation(self):
        REGISTRY.config("CEGMA@mac_units=1")
        assert REGISTRY.config("CEGMA").mac_units == cegma_config().mac_units

    def test_derived_name_is_canonical_spec(self):
        config = REGISTRY.config("CEGMA@buffer_kb=256,bandwidth_gbps=512")
        assert config.name == REGISTRY.canonical(
            "CEGMA@buffer_kb=256,bandwidth_gbps=512"
        )

    def test_canonical_sorts_and_resolves_aliases(self):
        a = REGISTRY.canonical("CEGMA@num_pes=64,bandwidth_gbps=512")
        b = REGISTRY.canonical(
            "CEGMA@dram_bandwidth_bytes_per_cycle=512,"
            "aggregation_lanes=64,mac_units=64"
        )
        assert a == b

    def test_config_or_none_for_software(self):
        assert REGISTRY.config_or_none("PyG-CPU") is None
        assert REGISTRY.config_or_none("CEGMA") is not None

    def test_build_spec_returns_simulator(self):
        simulator = build_platform("AWB-GCN@bandwidth_gbps=128")
        assert isinstance(simulator, AcceleratorSimulator)
        assert simulator.config.dram_bandwidth_bytes_per_cycle == 128.0

    def test_builder_validates_eagerly(self):
        with pytest.raises(ValueError):
            REGISTRY.builder("CEGMA@warp_drive=1")
        builder = REGISTRY.builder("CEGMA")
        assert isinstance(builder(), AcceleratorSimulator)

    def test_spec_fields_include_aliases(self):
        fields = REGISTRY.spec_fields("CEGMA")
        assert "bandwidth_gbps" in fields
        assert "mac_units" in fields
        assert "name" not in fields
        assert "emf" not in fields
        assert REGISTRY.spec_fields("PyG-CPU") == ()


class TestDeprecatedBuilders:
    def test_view_tracks_registry(self):
        assert sorted(PLATFORM_BUILDERS) == REGISTRY.names()

    def test_items_are_builders(self):
        for name, builder in PLATFORM_BUILDERS.items():
            assert callable(builder)
            assert name in REGISTRY

    def test_unknown_name_keyerror(self):
        with pytest.raises(KeyError):
            PLATFORM_BUILDERS["NotAPlatform"]


# Override values drawn per-field so the property covers ints, floats,
# and bools across every accelerator platform.
_ACCELERATORS = ("CEGMA", "CEGMA-EMF", "CEGMA-CGC", "HyGCN", "AWB-GCN")
_FIELD_VALUES = {
    "mac_units": st.integers(min_value=1, max_value=65536),
    "aggregation_lanes": st.integers(min_value=1, max_value=4096),
    "input_buffer_bytes": st.integers(min_value=1024, max_value=1 << 24),
    "matching_buffer_bytes": st.integers(min_value=1024, max_value=1 << 24),
    "dram_bandwidth_bytes_per_cycle": st.floats(
        min_value=1.0, max_value=4096.0, allow_nan=False
    ),
    "matching_utilization": st.floats(
        min_value=0.01, max_value=1.0, allow_nan=False
    ),
    "cgc_enabled": st.booleans(),
    "batch_interleaved": st.booleans(),
}


@st.composite
def _spec_overrides(draw):
    fields = draw(
        st.lists(
            st.sampled_from(sorted(_FIELD_VALUES)),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    return {field: draw(_FIELD_VALUES[field]) for field in fields}


class TestSpecRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        base=st.sampled_from(_ACCELERATORS),
        overrides=_spec_overrides(),
    )
    def test_format_then_parse_gives_equal_config(self, base, overrides):
        """Registry-produced spec strings parse back to equal configs."""
        spec = REGISTRY.format_spec(base, overrides)
        parsed = REGISTRY.parse(spec)
        assert parsed.base == base
        direct = REGISTRY.config(spec)
        payload = REGISTRY.entry(base).config_factory().to_dict()
        payload.update(overrides)
        payload["name"] = direct.name
        from repro.sim.config import HardwareConfig

        assert direct == HardwareConfig.from_dict(payload)
        # Canonicalization is a fixed point.
        assert REGISTRY.canonical(spec) == REGISTRY.canonical(
            REGISTRY.canonical(spec)
        )
