"""Tests for the from-scratch XXH32 implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emf import hash_feature_vector, xxh32


class TestReferenceVectors:
    """Official XXH32 test vectors (github.com/Cyan4973/xxHash)."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0x02CC5D05),
            (b"a", 0, 0x550D7456),
            (b"abc", 0, 0x32D153FF),
            (b"Nobody inspects the spammish repetition", 0, 0xE2293B2F),
        ],
    )
    def test_vector(self, data, seed, expected):
        assert xxh32(data, seed) == expected

    def test_seed_changes_hash(self):
        assert xxh32(b"abc", 0) != xxh32(b"abc", 1)

    def test_long_input_covers_stripe_loop(self):
        data = bytes(range(256)) * 4
        assert 0 <= xxh32(data) <= 0xFFFFFFFF

    @pytest.mark.parametrize("length", [0, 1, 3, 4, 15, 16, 17, 31, 32, 100])
    def test_all_tail_lengths(self, length):
        data = bytes(range(length % 256 or 1))[:length]
        result = xxh32(data)
        assert 0 <= result <= 0xFFFFFFFF

    @given(data=st.binary(max_size=200), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_32bit_output(self, data, seed):
        assert 0 <= xxh32(data, seed) <= 0xFFFFFFFF

    @given(data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_property_deterministic(self, data):
        assert xxh32(data) == xxh32(data)


class TestFeatureHashing:
    def test_equal_features_equal_tags(self):
        x = np.array([1.5, -2.25, 3.0])
        assert hash_feature_vector(x) == hash_feature_vector(x.copy())

    def test_different_features_different_tags(self):
        a = hash_feature_vector(np.array([1.0, 2.0]))
        b = hash_feature_vector(np.array([1.0, 2.1]))
        assert a != b

    def test_quantization_merges_near_equal(self):
        a = hash_feature_vector(np.array([1.0]))
        b = hash_feature_vector(np.array([1.0 + 1e-9]))
        assert a == b

    def test_quantization_respects_decimals(self):
        a = hash_feature_vector(np.array([1.0]), decimals=2)
        b = hash_feature_vector(np.array([1.004]), decimals=2)
        c = hash_feature_vector(np.array([1.006]), decimals=2)
        assert a == b
        assert a != c

    def test_negative_zero_normalized(self):
        assert hash_feature_vector(np.array([0.0])) == hash_feature_vector(
            np.array([-0.0])
        )

    def test_seed_parameter(self):
        x = np.array([1.0, 2.0])
        assert hash_feature_vector(x, seed=1) != hash_feature_vector(x, seed=2)

    def test_collision_rate_is_low(self):
        """Sanity check on hash uniformity over many random vectors."""
        rng = np.random.default_rng(0)
        tags = {
            hash_feature_vector(rng.normal(size=8)) for _ in range(2000)
        }
        assert len(tags) == 2000


class TestQuantizationContract:
    """quantize_features happens at exactly one site: pre-quantized
    callers pass decimals=None and must land on identical tags."""

    def test_prequantized_vector_tags_match_one_shot(self):
        from repro.emf import quantize_features

        rng = np.random.default_rng(21)
        for row in rng.normal(size=(6, 5)):
            assert hash_feature_vector(
                quantize_features(row), decimals=None
            ) == hash_feature_vector(row)

    def test_prequantized_matrix_tags_match_one_shot(self):
        from repro.emf import hash_feature_matrix, quantize_features

        rng = np.random.default_rng(22)
        features = rng.normal(size=(7, 4))
        assert np.array_equal(
            hash_feature_matrix(quantize_features(features), decimals=None),
            hash_feature_matrix(features),
        )

    def test_quantize_idempotent_bitwise(self):
        from repro.emf import quantize_features

        rng = np.random.default_rng(23)
        features = np.concatenate(
            [rng.normal(size=(4, 3)), np.array([[-0.0, 0.0, -1e-12]])]
        )
        once = quantize_features(features)
        assert once.tobytes() == quantize_features(once).tobytes()

    def test_negative_zero_rows_share_tag(self):
        assert hash_feature_vector(
            np.array([-0.0, 2.0])
        ) == hash_feature_vector(np.array([0.0, 2.0]))

    def test_tiny_negatives_collapse_to_positive_zero(self):
        from repro.emf import quantize_features

        out = quantize_features(np.array([[-1e-9, 1e-9]]))
        assert not np.signbit(out).any()
        assert hash_feature_vector(np.array([-1e-9])) == hash_feature_vector(
            np.array([1e-9])
        )
