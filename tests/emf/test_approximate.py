"""Tests for approximate (LSH) matching filters."""

import numpy as np
import pytest

from repro.emf import (
    approximate_matching_filter,
    e2lsh_matching_filter,
    e2lsh_signatures,
    elastic_matching_filter,
    simhash_signatures,
)


class TestSimHash:
    def test_exact_duplicates_always_collide(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(4, 8))
        features = base[[0, 1, 2, 3, 0, 1]]
        signatures = simhash_signatures(features, 32)
        assert signatures[0] == signatures[4]
        assert signatures[1] == signatures[5]

    def test_signature_range(self):
        rng = np.random.default_rng(1)
        signatures = simhash_signatures(rng.normal(size=(10, 4)), 16)
        assert np.all(signatures < (1 << 16))

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            simhash_signatures(np.ones((2, 2)), 0)
        with pytest.raises(ValueError):
            simhash_signatures(np.ones((2, 2)), 65)

    def test_direction_collapse_failure_mode(self):
        """Features that differ only in magnitude along one direction all
        collide — SimHash cannot separate post-ReLU GNN features (the
        documented negative result)."""
        direction = np.ones((1, 8))
        features = direction * np.linspace(1.0, 5.0, 6)[:, None]
        result = approximate_matching_filter(features, 64, center=False)
        assert result.num_unique == 1


class TestE2LSH:
    def test_exact_duplicates_always_collide(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(3, 6))
        features = base[[0, 1, 2, 0]]
        result = e2lsh_matching_filter(features, 8, 0.05)
        assert result.representative(3) == 0

    def test_separates_magnitude_differences(self):
        """The 1-D magnitude geometry SimHash fails on."""
        direction = np.ones((1, 8))
        features = direction * np.linspace(1.0, 5.0, 6)[:, None]
        result = e2lsh_matching_filter(features, 8, 0.05)
        assert result.num_unique == 6

    def test_width_controls_merging(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(40, 8))
        narrow = e2lsh_matching_filter(features, 8, 0.01).num_unique
        wide = e2lsh_matching_filter(features, 8, 10.0).num_unique
        assert wide < narrow

    def test_narrow_buckets_approach_exact(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(5, 8))
        features = base[rng.integers(0, 5, size=30)]
        exact = elastic_matching_filter(features).num_unique
        approx = e2lsh_matching_filter(features, 12, 1e-4).num_unique
        assert approx == exact

    def test_validation(self):
        with pytest.raises(ValueError):
            e2lsh_signatures(np.ones((2, 2)), 0, 0.1)
        with pytest.raises(ValueError):
            e2lsh_signatures(np.ones((2, 2)), 4, 0.0)
        with pytest.raises(ValueError):
            e2lsh_signatures(np.ones(4), 4, 0.1)
