"""Tests for the cycle-granular EMF pipeline simulation."""

import pytest

from repro.emf.hardware import EMFHardwareModel
from repro.emf.pipeline import EMFPipelineSimulator


class TestPipelineRun:
    def test_zero_nodes(self):
        stats = EMFPipelineSimulator().run(0)
        assert stats.total_cycles == 0

    def test_everything_drains(self):
        sim = EMFPipelineSimulator()
        stats = sim.run(500)
        assert stats.total_cycles > 0
        assert stats.max_occupancy <= sim.task_buffer_entries

    def test_consumer_faster_than_producer_no_stalls(self):
        # Producer emits 128 tags / 64 cycles = 2/cycle; consumer 3/cycle.
        sim = EMFPipelineSimulator(
            hash_parallelism=128,
            hash_wave_cycles=64,
            consume_per_cycle=3,
            task_buffer_entries=256,
        )
        stats = sim.run(1000)
        assert stats.producer_stall_cycles == 0

    def test_tiny_buffer_back_pressures(self):
        sim = EMFPipelineSimulator(
            hash_parallelism=128,
            hash_wave_cycles=16,
            consume_per_cycle=1,
            task_buffer_entries=128,
        )
        stats = sim.run(1000)
        assert stats.producer_stall_cycles > 0

    def test_matches_closed_form_order(self):
        """The pipeline drain time stays within ~2x of the coarse
        closed-form model's hashing+filtering total."""
        nodes = 391  # RD-12K average
        coarse = EMFHardwareModel().per_graph_report(nodes, 64, 1)
        stats = EMFPipelineSimulator().run(nodes)
        assert coarse.total_cycles / 2 <= stats.total_cycles <= coarse.total_cycles * 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EMFPipelineSimulator(hash_parallelism=0)
        with pytest.raises(ValueError):
            EMFPipelineSimulator().run(-1)


class TestBufferSizing:
    def test_minimum_buffer_avoids_stalls(self):
        sim = EMFPipelineSimulator(task_buffer_entries=128)
        entries = sim.minimum_buffer_entries(512)
        verified = EMFPipelineSimulator(task_buffer_entries=entries)
        assert verified.run(512).producer_stall_cycles == 0

    def test_minimum_is_multiple_of_burst(self):
        sim = EMFPipelineSimulator()
        entries = sim.minimum_buffer_entries(300)
        assert entries % sim.hash_parallelism == 0


class TestEventMethodEquivalence:
    """The event-driven fast path must be bit-identical to the
    cycle-accurate reference loop, including stall accounting."""

    CONFIGS = [
        dict(),
        dict(hash_parallelism=128, hash_wave_cycles=64, consume_per_cycle=3,
             task_buffer_entries=256),
        dict(hash_parallelism=128, hash_wave_cycles=16, consume_per_cycle=1,
             task_buffer_entries=128),
        dict(hash_parallelism=1, hash_wave_cycles=1, consume_per_cycle=1,
             task_buffer_entries=1),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("nodes", [0, 1, 127, 128, 129, 1000])
    def test_identical_stats(self, config, nodes):
        sim = EMFPipelineSimulator(**config)
        event = sim.run(nodes, method="event")
        cycle = sim.run(nodes, method="cycle")
        assert event.total_cycles == cycle.total_cycles
        assert event.producer_stall_cycles == cycle.producer_stall_cycles
        assert event.max_occupancy == cycle.max_occupancy

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            EMFPipelineSimulator().run(10, method="magic")

    @pytest.mark.slow
    def test_fuzzed_equivalence(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(60):
            sim = EMFPipelineSimulator(
                hash_parallelism=int(rng.integers(1, 64)),
                hash_wave_cycles=int(rng.integers(1, 32)),
                consume_per_cycle=int(rng.integers(1, 8)),
                task_buffer_entries=int(rng.integers(1, 128)),
            )
            nodes = int(rng.integers(0, 600))
            try:
                cycle = sim.run(nodes, method="cycle")
            except RuntimeError:
                with pytest.raises(RuntimeError):
                    sim.run(nodes, method="event")
                continue
            event = sim.run(nodes, method="event")
            assert event.total_cycles == cycle.total_cycles
            assert event.producer_stall_cycles == cycle.producer_stall_cycles
            assert event.max_occupancy == cycle.max_occupancy


def _stats_fields(stats):
    return (
        stats.total_cycles,
        stats.producer_stall_cycles,
        stats.consumer_idle_cycles,
        stats.max_occupancy,
    )


class TestRunBatch:
    def test_matches_loop_of_runs(self):
        sim = EMFPipelineSimulator()
        counts = [0, 17, 500, 17, 64, 500]
        batched = sim.run_batch(counts)
        looped = [sim.run(count) for count in counts]
        assert list(map(_stats_fields, batched)) == list(
            map(_stats_fields, looped)
        )

    def test_results_in_input_order(self):
        sim = EMFPipelineSimulator()
        counts = [300, 5, 300]
        stats = sim.run_batch(counts)
        assert _stats_fields(stats[0]) == _stats_fields(stats[2])
        assert stats[0].total_cycles > stats[1].total_cycles

    def test_cycle_method_delegates(self):
        sim = EMFPipelineSimulator()
        batched = sim.run_batch([40, 8], method="cycle")
        looped = [sim.run(40, method="cycle"), sim.run(8, method="cycle")]
        assert list(map(_stats_fields, batched)) == list(
            map(_stats_fields, looped)
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            EMFPipelineSimulator().run_batch([4], method="exact")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EMFPipelineSimulator().run_batch([4, -1])

    def test_empty_batch(self):
        assert EMFPipelineSimulator().run_batch([]) == []

    def test_telemetry_recorded_per_item_not_per_unique(self):
        from repro.obs.metrics import metrics_enabled

        sim = EMFPipelineSimulator()
        with metrics_enabled() as registry:
            sim.run_batch([100, 100, 100])
        assert registry.counter("emf.pipeline.runs") == 3
