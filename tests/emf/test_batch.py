"""Tests for cross-pair (batch-scoped) duplicate analysis."""

import numpy as np
import pytest

from repro.emf import batch_matching_counts, cross_pair_headroom
from repro.graphs import Graph, GraphPair
from repro.models import GraphSim


def _trace(pair, model=None):
    return (model or GraphSim()).forward_pair(pair)


def _ring_pair(n=6):
    g = Graph.from_undirected_edges(n, [(i, (i + 1) % n) for i in range(n)])
    return GraphPair(g, g.copy())


class TestBatchCounts:
    def test_identical_pairs_collapse_across_batch(self):
        """Two identical pairs share every feature combination, so the
        batch scope halves the per-pair-unique count."""
        model = GraphSim()
        traces = [_trace(_ring_pair(), model), _trace(_ring_pair(), model)]
        counts = batch_matching_counts(traces)
        assert counts["batch_unique"] == counts["per_pair_unique"] // 2

    def test_scopes_are_ordered(self):
        model = GraphSim()
        traces = [_trace(_ring_pair(5), model), _trace(_ring_pair(7), model)]
        counts = batch_matching_counts(traces)
        assert counts["batch_unique"] <= counts["per_pair_unique"] <= counts["total"]

    def test_empty_batch(self):
        headroom = cross_pair_headroom([])
        assert headroom["headroom"] == 0.0
        assert headroom["paper_emf_remaining"] == 1.0

    def test_single_pair_no_headroom(self):
        traces = [_trace(_ring_pair())]
        headroom = cross_pair_headroom(traces)
        assert headroom["headroom"] == pytest.approx(0.0, abs=1e-12)

    def test_rings_of_any_size_share_features(self):
        """All ring nodes are degree-2 with degree-2 neighbors, so rings
        of different sizes still produce identical node features — the
        batch scope deduplicates them even though per-pair EMF cannot."""
        model = GraphSim()
        traces = [_trace(_ring_pair(5), model), _trace(_ring_pair(9), model)]
        headroom = cross_pair_headroom(traces)
        assert headroom["headroom"] > 0.0

    def test_disjoint_feature_spaces_no_headroom(self):
        # A ring pair and a star pair share no node features.
        model = GraphSim()
        star = Graph.from_undirected_edges(6, [(0, i) for i in range(1, 6)])
        traces = [
            _trace(_ring_pair(5), model),
            _trace(GraphPair(star, star.copy()), model),
        ]
        headroom = cross_pair_headroom(traces)
        assert headroom["headroom"] == pytest.approx(0.0, abs=1e-12)
