"""Tests for the Elastic Matching Filter (Algorithm 1) and MatchingPlan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emf import MatchingPlan, elastic_matching_filter
from repro.models import similarity_matrix


class TestAlgorithm1:
    def test_all_unique(self):
        features = np.eye(4)
        result = elastic_matching_filter(features)
        assert result.num_unique == 4
        assert result.num_duplicates == 0
        assert result.unique_fraction == 1.0

    def test_all_duplicates_of_first(self):
        features = np.ones((5, 3))
        result = elastic_matching_filter(features)
        assert result.num_unique == 1
        assert result.unique_indices == [0]
        assert result.tag_map == {1: 0, 2: 0, 3: 0, 4: 0}

    def test_first_occurrence_is_unique(self):
        """Paper's Fig. 10 example: node 1 recorded, node 2 affiliated."""
        features = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        result = elastic_matching_filter(features)
        assert 0 in result.record_set
        assert result.tag_map == {1: 0}
        assert result.representative(1) == 0
        assert result.representative(2) == 2

    def test_mixed_duplicate_groups(self):
        features = np.array([[1.0], [2.0], [1.0], [2.0], [3.0]])
        result = elastic_matching_filter(features)
        assert result.num_unique == 3
        assert result.tag_map == {2: 0, 3: 1}

    def test_empty_feature_matrix(self):
        result = elastic_matching_filter(np.zeros((0, 4)))
        assert result.num_unique == 0
        assert result.unique_fraction == 1.0

    def test_one_d_input_rejected(self):
        with pytest.raises(ValueError):
            elastic_matching_filter(np.ones(4))

    def test_near_equal_features_merged_by_quantization(self):
        features = np.array([[1.0, 2.0], [1.0 + 1e-9, 2.0 - 1e-9]])
        result = elastic_matching_filter(features)
        assert result.num_unique == 1

    def test_no_conflicts_on_random_features(self):
        rng = np.random.default_rng(0)
        result = elastic_matching_filter(rng.normal(size=(500, 16)))
        assert result.hash_conflicts == 0
        assert result.num_unique == 500

    @given(dup_groups=st.integers(1, 5), group_size=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_counts_consistent(self, dup_groups, group_size):
        rng = np.random.default_rng(dup_groups * 31 + group_size)
        base = rng.normal(size=(dup_groups, 4))
        features = np.repeat(base, group_size, axis=0)
        result = elastic_matching_filter(features)
        assert result.num_unique == dup_groups
        assert result.num_unique + result.num_duplicates == result.num_nodes


class TestMatchingPlan:
    def _plan(self, x, y):
        return MatchingPlan.from_features(x, y)

    def test_workload_counts(self):
        x = np.repeat(np.eye(2), 3, axis=0)  # 6 nodes, 2 unique
        y = np.eye(4)  # 4 unique nodes
        plan = self._plan(x, y)
        assert plan.total_matchings == 24
        assert plan.unique_matchings == 8
        assert plan.redundant_matchings == 16
        assert plan.remaining_fraction == pytest.approx(8 / 24)

    def test_empty_graph_remaining_fraction(self):
        plan = self._plan(np.zeros((0, 2)), np.eye(2))
        assert plan.remaining_fraction == 1.0

    @pytest.mark.parametrize("kind", ["dot", "cosine", "euclidean"])
    def test_broadcast_reconstructs_exactly(self, kind):
        """The EMF's core accuracy guarantee: filtering is lossless."""
        rng = np.random.default_rng(3)
        base_x = rng.normal(size=(4, 8))
        base_y = rng.normal(size=(3, 8))
        x = base_x[rng.integers(0, 4, size=10)]
        y = base_y[rng.integers(0, 3, size=7)]
        plan = self._plan(x, y)
        full = similarity_matrix(x, y, kind)
        rebuilt = plan.broadcast(plan.unique_similarity(full))
        assert np.array_equal(full, rebuilt)

    def test_broadcast_shape_validated(self):
        plan = self._plan(np.ones((3, 2)), np.eye(2))
        with pytest.raises(ValueError):
            plan.broadcast(np.zeros((5, 5)))

    def test_unique_similarity_selects_unique_rows_cols(self):
        x = np.array([[1.0], [1.0], [2.0]])
        y = np.array([[3.0], [3.0]])
        plan = self._plan(x, y)
        full = similarity_matrix(x, y, "dot")
        unique = plan.unique_similarity(full)
        assert unique.shape == (2, 1)
        assert unique[0, 0] == 3.0
        assert unique[1, 0] == 6.0

    @given(n=st.integers(1, 12), m=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_property_unique_never_exceeds_total(self, n, m):
        rng = np.random.default_rng(n * 13 + m)
        x = rng.integers(0, 3, size=(n, 2)).astype(float)
        y = rng.integers(0, 3, size=(m, 2)).astype(float)
        plan = self._plan(x, y)
        assert 0 < plan.unique_matchings <= plan.total_matchings
        assert 0.0 < plan.remaining_fraction <= 1.0


class TestMethodEquivalence:
    """The fast byte-keyed path must agree with the hardware-faithful
    XXH32 path whenever XXH32 is conflict-free (every observed case)."""

    def test_methods_agree_on_duplicated_features(self):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(6, 8))
        features = base[rng.integers(0, 6, size=40)]
        fast = elastic_matching_filter(features, method="bytes")
        slow = elastic_matching_filter(features, method="xxhash")
        assert fast.tag_map == slow.tag_map
        assert fast.unique_indices == slow.unique_indices

    def test_methods_agree_on_random_features(self):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(50, 4))
        fast = elastic_matching_filter(features, method="bytes")
        slow = elastic_matching_filter(features, method="xxhash")
        assert fast.tag_map == slow.tag_map == {}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            elastic_matching_filter(np.ones((2, 2)), method="md5")


class TestHashConflictHandling:
    def test_conflicting_tags_treated_as_unique(self, monkeypatch):
        """When two distinct feature vectors collide (forced here by a
        constant hash), verification must catch the conflict and keep
        both nodes unique — trading performance, never accuracy."""
        import repro.emf.filter as filter_module

        monkeypatch.setattr(
            filter_module, "hash_feature_vector", lambda *a, **k: 42
        )
        features = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]])
        result = elastic_matching_filter(
            features, method="xxhash", backend="scalar"
        )
        assert result.hash_conflicts >= 1
        assert result.representative(1) == 1  # distinct row stays unique
        # Node 2 duplicates node 0's features but the constant hash maps
        # it to the first holder; verification confirms equality.
        assert result.representative(2) == 0

    def test_conflicting_tags_treated_as_unique_vectorized(self, monkeypatch):
        """Same conflict guarantee on the vectorized backend (collision
        forced by a constant batch hash)."""
        import repro.emf.filter as filter_module

        monkeypatch.setattr(
            filter_module,
            "hash_feature_matrix",
            lambda features, *a, **k: np.full(
                features.shape[0], 42, dtype=np.uint32
            ),
        )
        features = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]])
        result = elastic_matching_filter(
            features, method="xxhash", backend="vectorized"
        )
        assert result.hash_conflicts >= 1
        assert result.representative(1) == 1
        assert result.representative(2) == 0

    def test_conflicts_disabled_without_verification(self, monkeypatch):
        import repro.emf.filter as filter_module

        monkeypatch.setattr(
            filter_module, "hash_feature_vector", lambda *a, **k: 42
        )
        features = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = elastic_matching_filter(
            features, method="xxhash", backend="scalar", verify_conflicts=False
        )
        # Without verification the collision silently merges -- the mode
        # the hardware uses because real conflicts are ~1e-7.
        assert result.hash_conflicts == 0
        assert result.representative(1) == 0

    def test_conflicts_disabled_without_verification_vectorized(
        self, monkeypatch
    ):
        import repro.emf.filter as filter_module

        monkeypatch.setattr(
            filter_module,
            "hash_feature_matrix",
            lambda features, *a, **k: np.full(
                features.shape[0], 42, dtype=np.uint32
            ),
        )
        features = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = elastic_matching_filter(
            features,
            method="xxhash",
            backend="vectorized",
            verify_conflicts=False,
        )
        assert result.hash_conflicts == 0
        assert result.representative(1) == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            elastic_matching_filter(np.ones((2, 2)), backend="gpu")


class TestBitwiseVerification:
    """Conflict verification compares quantized feature *bytes* (the
    stream the hash digests), not values — regression tests for the
    NaN divergence between the bytes and xxhash methods."""

    NAN_FEATURES = np.array(
        [[np.nan, 1.0], [np.nan, 1.0], [2.0, 3.0]]
    )

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_bit_identical_nan_rows_are_duplicates(self, backend):
        result = elastic_matching_filter(
            self.NAN_FEATURES, method="xxhash", backend=backend
        )
        assert result.hash_conflicts == 0
        assert result.representative(1) == 0
        assert result.tag_map == {1: 0}

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_methods_agree_on_nan_rows(self, backend):
        by_bytes = elastic_matching_filter(
            self.NAN_FEATURES, method="bytes", backend=backend
        )
        by_hash = elastic_matching_filter(
            self.NAN_FEATURES, method="xxhash", backend=backend
        )
        assert by_bytes.unique_indices == by_hash.unique_indices
        assert by_bytes.tag_map == by_hash.tag_map

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_distinct_nan_payload_columns_stay_unique(self, backend):
        # Rows differ only in a non-NaN column; bitwise comparison must
        # not over-merge them.
        features = np.array([[np.nan, 1.0], [np.nan, 2.0]])
        result = elastic_matching_filter(
            features, method="xxhash", backend=backend
        )
        assert result.num_unique == 2
        assert result.hash_conflicts == 0
