"""Vectorized XXH32 / EMF backend equivalence tests.

The vectorized backend must be bit-identical to the scalar reference:
same XXH32 words on the official test vectors, same tags on arbitrary
feature matrices (including NaN and signed zeros), and the same
FilterResult record/tag maps through the full filter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emf import (
    elastic_matching_filter,
    hash_feature_matrix,
    hash_feature_vector,
    quantize_features,
    xxh32,
    xxh32_batch,
)


def _as_matrix(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8).reshape(1, -1)


class TestBatchReferenceVectors:
    """Official XXH32 vectors (github.com/Cyan4973/xxHash) via the
    batch kernel, one (1, L) matrix per vector."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0x02CC5D05),
            (b"a", 0, 0x550D7456),
            (b"abc", 0, 0x32D153FF),
            (b"Nobody inspects the spammish repetition", 0, 0xE2293B2F),
        ],
    )
    def test_vector(self, data, seed, expected):
        result = xxh32_batch(_as_matrix(data), seed)
        assert result.dtype == np.uint32
        assert result.shape == (1,)
        assert int(result[0]) == expected

    @pytest.mark.parametrize(
        "length", [0, 1, 3, 4, 15, 16, 17, 31, 32, 33, 100]
    )
    def test_all_tail_lengths_match_scalar(self, length):
        """Covers the 16-byte stripe loop, the 4-byte tail, and the
        byte tail against the scalar reference."""
        rng = np.random.default_rng(length)
        rows = rng.integers(0, 256, size=(7, length), dtype=np.uint8)
        batch = xxh32_batch(rows, seed=3)
        for row, tag in zip(rows, batch):
            assert int(tag) == xxh32(row.tobytes(), seed=3)

    @given(
        num_rows=st.integers(1, 20),
        length=st.integers(0, 70),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_scalar(self, num_rows, length, seed):
        rng = np.random.default_rng(num_rows * 1009 + length)
        rows = rng.integers(0, 256, size=(num_rows, length), dtype=np.uint8)
        batch = xxh32_batch(rows, seed=seed)
        expected = [xxh32(row.tobytes(), seed=seed) for row in rows]
        assert batch.tolist() == expected


class TestHashFeatureMatrix:
    def test_matches_per_row_hashing(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(64, 16))
        batch = hash_feature_matrix(features, seed=5)
        expected = [hash_feature_vector(row, seed=5) for row in features]
        assert batch.tolist() == expected

    def test_special_values_match_scalar(self):
        """NaN, +-0.0, and +-inf survive quantization identically on
        both paths (same bit patterns hashed)."""
        features = np.array(
            [
                [np.nan, 0.0, 1.0],
                [np.nan, -0.0, 1.0],
                [np.inf, -np.inf, 2.0],
                [0.0, -0.0, 1.0 + 1e-9],
            ]
        )
        batch = hash_feature_matrix(features)
        expected = [hash_feature_vector(row) for row in features]
        assert batch.tolist() == expected
        # Signed zeros quantize to the same bits, so rows 0 and 1 tie.
        assert batch[0] == batch[1]

    def test_empty_matrices(self):
        assert hash_feature_matrix(np.zeros((0, 4))).shape == (0,)
        wide = hash_feature_matrix(np.zeros((3, 0)))
        assert wide.shape == (3,)
        # Zero-width rows all hash the empty byte string.
        assert len(set(wide.tolist())) == 1
        assert int(wide[0]) == xxh32(b"")

    def test_duplicated_rows_share_tags(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(8, 8))
        features = base[rng.integers(0, 8, size=50)]
        tags = hash_feature_matrix(features)
        scalar = np.array([hash_feature_vector(row) for row in features])
        assert np.array_equal(tags, scalar)

    @given(n=st.integers(0, 12), d=st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_scalar(self, n, d):
        rng = np.random.default_rng(n * 31 + d)
        features = rng.normal(size=(n, d))
        batch = hash_feature_matrix(features)
        expected = [hash_feature_vector(row) for row in features]
        assert batch.tolist() == expected


class TestQuantizeFeatures:
    def test_negative_zero_normalized(self):
        out = quantize_features(np.array([[-0.0, 0.0]]))
        assert np.all(np.signbit(out) == False)  # noqa: E712

    def test_none_decimals_passthrough(self):
        features = np.array([[1.23456789]])
        assert np.array_equal(
            quantize_features(features, decimals=None), features
        )

    def test_rounding(self):
        out = quantize_features(np.array([[1.004, 1.006]]), decimals=2)
        assert out[0, 0] == 1.0
        assert out[0, 1] == pytest.approx(1.01)


class TestBackendEquivalence:
    """Both backends produce identical FilterResult contents."""

    @pytest.mark.parametrize("method", ["bytes", "xxhash"])
    @pytest.mark.parametrize("verify", [True, False])
    def test_identical_results(self, method, verify):
        rng = np.random.default_rng(7)
        base = rng.normal(size=(10, 6))
        features = base[rng.integers(0, 10, size=80)]
        scalar = elastic_matching_filter(
            features,
            method=method,
            backend="scalar",
            verify_conflicts=verify,
        )
        vectorized = elastic_matching_filter(
            features,
            method=method,
            backend="vectorized",
            verify_conflicts=verify,
        )
        assert scalar.record_set == vectorized.record_set
        assert scalar.tag_map == vectorized.tag_map
        assert scalar.num_nodes == vectorized.num_nodes
        assert scalar.hash_conflicts == vectorized.hash_conflicts

    @pytest.mark.parametrize("method", ["bytes", "xxhash"])
    def test_special_values(self, method):
        features = np.array(
            [
                [np.nan, 0.0],
                [np.nan, -0.0],
                [1.0, 2.0],
                [1.0 + 1e-9, 2.0],
                [np.inf, 2.0],
            ]
        )
        scalar = elastic_matching_filter(
            features, method=method, backend="scalar"
        )
        vectorized = elastic_matching_filter(
            features, method=method, backend="vectorized"
        )
        assert scalar.record_set == vectorized.record_set
        assert scalar.tag_map == vectorized.tag_map
        assert scalar.hash_conflicts == vectorized.hash_conflicts
        # 1+1e-9 rounds onto 1.0 and is recognized as a duplicate. The
        # NaN rows are bit-identical, and verification compares the
        # quantized feature *bytes* — the same stream the hash digests —
        # so both methods merge them (NaN ``==`` would disagree with the
        # hash and misreport a conflict).
        assert vectorized.tag_map == {1: 0, 3: 2}
        assert vectorized.hash_conflicts == 0

    @given(n=st.integers(0, 40), d=st.integers(0, 5), dup=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_identical(self, n, d, dup):
        rng = np.random.default_rng(n * 97 + d * 13 + dup)
        base = rng.normal(size=(max(1, n // dup), d))
        features = (
            base[rng.integers(0, base.shape[0], size=n)]
            if n
            else np.zeros((0, d))
        )
        for method in ("bytes", "xxhash"):
            scalar = elastic_matching_filter(
                features, method=method, backend="scalar"
            )
            vectorized = elastic_matching_filter(
                features, method=method, backend="vectorized"
            )
            assert scalar.record_set == vectorized.record_set
            assert scalar.tag_map == vectorized.tag_map


class TestBatchEdgeCases:
    """Shape and memory-layout edge cases of the batch kernel."""

    @pytest.mark.parametrize("length", [0, 1, 4, 16, 19])
    def test_zero_rows(self, length):
        result = xxh32_batch(np.zeros((0, length), dtype=np.uint8), seed=5)
        assert result.shape == (0,)
        assert result.dtype == np.uint32

    def test_zero_length_rows_hash_empty_string(self):
        result = xxh32_batch(np.zeros((6, 0), dtype=np.uint8), seed=0)
        assert result.shape == (6,)
        assert all(int(tag) == xxh32(b"") for tag in result)

    def test_row_strided_view_matches_contiguous(self):
        rng = np.random.default_rng(11)
        base = rng.integers(0, 256, size=(10, 21), dtype=np.uint8)
        view = base[::2]
        assert not view.flags["C_CONTIGUOUS"]
        assert np.array_equal(
            xxh32_batch(view, seed=9),
            xxh32_batch(np.ascontiguousarray(view), seed=9),
        )

    def test_column_strided_view_matches_contiguous(self):
        rng = np.random.default_rng(12)
        base = rng.integers(0, 256, size=(5, 40), dtype=np.uint8)
        view = base[:, 1:36:2]
        assert not view.flags["C_CONTIGUOUS"]
        assert np.array_equal(
            xxh32_batch(view, seed=2),
            xxh32_batch(np.ascontiguousarray(view), seed=2),
        )

    def test_strided_view_matches_scalar(self):
        rng = np.random.default_rng(13)
        base = rng.integers(0, 256, size=(9, 30), dtype=np.uint8)
        view = base[1::3, 2:25]
        batch = xxh32_batch(view, seed=7)
        for row, tag in zip(view, batch):
            assert int(tag) == xxh32(bytes(row), seed=7)

    def test_fortran_order_input(self):
        rng = np.random.default_rng(14)
        c_order = rng.integers(0, 256, size=(4, 18), dtype=np.uint8)
        f_order = np.asfortranarray(c_order)
        assert np.array_equal(
            xxh32_batch(f_order, seed=1), xxh32_batch(c_order, seed=1)
        )
