"""Tests for the EMF hardware timing model (Fig. 23)."""

import pytest

from repro.emf import EMFHardwareModel


class TestHashingCycles:
    def test_single_wave(self):
        model = EMFHardwareModel(hash_parallelism=128)
        assert model.hashing_cycles(num_nodes=16, feature_dim=64) == 64

    def test_multiple_waves(self):
        model = EMFHardwareModel(hash_parallelism=128)
        assert model.hashing_cycles(num_nodes=391, feature_dim=64) == 4 * 64

    def test_scales_with_feature_dim(self):
        model = EMFHardwareModel()
        assert model.hashing_cycles(100, 128) == 2 * model.hashing_cycles(100, 64)


class TestFilteringCycles:
    def test_throughput(self):
        model = EMFHardwareModel(filter_throughput=3)
        assert model.filtering_cycles(num_nodes=391) == 131

    def test_comparator_overflow_multiplies_passes(self):
        model = EMFHardwareModel(filter_throughput=1, num_comparators=100)
        base = model.filtering_cycles(num_nodes=10, record_set_size=100)
        doubled = model.filtering_cycles(num_nodes=10, record_set_size=101)
        assert doubled == 2 * base

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EMFHardwareModel(hash_parallelism=0)


class TestPerGraphReport:
    def test_rd12k_matches_paper_order_of_magnitude(self):
        """Fig. 23: RD-12K takes 1488 hashing / 655 filtering cycles per
        graph; our model gives 1280 / 655 (5-layer GMN-Li, 391 nodes)."""
        model = EMFHardwareModel()
        report = model.per_graph_report(
            num_nodes=391, feature_dim=64, num_layers=5
        )
        assert report.hashing_cycles == 1280
        assert report.filtering_cycles == 655

    def test_sub_microsecond_overhead(self):
        """Section V-C: EMF overhead is far below millisecond deadlines."""
        model = EMFHardwareModel()
        report = model.per_graph_report(num_nodes=509, feature_dim=64, num_layers=5)
        assert report.seconds(1e9) < 5e-6

    def test_total_is_sum(self):
        model = EMFHardwareModel()
        report = model.per_graph_report(64, 64, 3)
        assert report.total_cycles == report.hashing_cycles + report.filtering_cycles


class TestTagBufferOverflow:
    def test_within_capacity(self):
        model = EMFHardwareModel(tag_buffer_entries=1000)
        assert not model.tag_buffer_overflow(1000)

    def test_overflow(self):
        model = EMFHardwareModel(tag_buffer_entries=1000)
        assert model.tag_buffer_overflow(1001)
