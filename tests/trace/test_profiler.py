"""Tests for the trace profiler."""

import pytest

from repro.graphs import load_dataset
from repro.models import build_model
from repro.trace import BatchTrace, profile_batches, profile_pairs
from repro.graphs.batch import GraphPairBatch


@pytest.fixture(scope="module")
def pairs():
    return load_dataset("AIDS", seed=0, num_pairs=6)


@pytest.fixture(scope="module")
def model(pairs):
    return build_model("SimGNN", input_dim=pairs[0].target.feature_dim)


class TestProfilePairs:
    def test_one_trace_per_pair(self, model, pairs):
        traces = profile_pairs(model, pairs)
        assert len(traces) == len(pairs)
        assert all(t.model_name == "SimGNN" for t in traces)


class TestProfileBatches:
    def test_batching(self, model, pairs):
        batches = profile_batches(model, pairs, batch_size=4)
        assert [b.batch.batch_size for b in batches] == [4, 2]

    def test_max_batches_cap(self, model, pairs):
        batches = profile_batches(model, pairs, batch_size=2, max_batches=1)
        assert len(batches) == 1

    def test_batch_trace_properties(self, model, pairs):
        batch = profile_batches(model, pairs, batch_size=3)[0]
        assert batch.model_name == "SimGNN"
        assert batch.num_layers == 3
        totals = batch.total_flops
        assert totals["match"] > 0
        assert totals["combine"] > 0

    def test_trace_count_mismatch_rejected(self, model, pairs):
        traces = profile_pairs(model, pairs[:2])
        with pytest.raises(ValueError):
            BatchTrace(GraphPairBatch(pairs[:3]), traces)

    def test_total_flops_sums_pairs(self, model, pairs):
        batch = profile_batches(model, pairs[:2], batch_size=2)[0]
        per_pair = [t.total_flops.total for t in batch.pair_traces]
        assert sum(batch.total_flops.values()) == sum(per_pair)


class TestWorkloadSummary:
    def test_summary_fields(self, model, pairs):
        from repro.trace import workload_summary

        traces = profile_batches(model, pairs, batch_size=3)
        summary = workload_summary(traces)
        assert summary["model"] == "SimGNN"
        assert summary["num_pairs"] == len(pairs)
        assert summary["num_layers"] == 3
        assert 0.0 < summary["match_flop_share"] < 1.0
        assert summary["total_gflops"] > 0

    def test_empty_rejected(self):
        from repro.trace import workload_summary

        with pytest.raises(ValueError):
            workload_summary([])
