"""Tests for the analytical layer FLOP breakdown (Fig. 3 accounting)."""

import pytest

from repro.graphs import Graph, GraphPair
from repro.trace import layer_flop_breakdown, pair_flop_breakdown


class TestLayerFlopBreakdown:
    def test_matching_term(self):
        breakdown = layer_flop_breakdown(10, 20, 0, 0, feature_dim=8)
        assert breakdown["match"] == 2 * 10 * 20 * 8

    def test_aggregate_term(self):
        breakdown = layer_flop_breakdown(4, 4, 6, 10, feature_dim=8)
        assert breakdown["aggregate"] == 2 * 16 * 8

    def test_combine_with_weights(self):
        breakdown = layer_flop_breakdown(
            3, 5, 0, 0, feature_dim=8, combine_includes_weights=True
        )
        assert breakdown["combine"] == 2 * 8 * 8 * 8

    def test_combine_without_weights(self):
        breakdown = layer_flop_breakdown(
            3, 5, 0, 0, feature_dim=8, combine_includes_weights=False
        )
        assert breakdown["combine"] == 2 * 8 * 8

    def test_invalid_feature_dim(self):
        with pytest.raises(ValueError):
            layer_flop_breakdown(1, 1, 0, 0, feature_dim=0)

    def test_quadratic_matching_growth(self):
        """Section III-B: 100-node graphs need 10,000 matchings."""
        small = layer_flop_breakdown(10, 10, 0, 0)["match"]
        large = layer_flop_breakdown(100, 100, 0, 0)["match"]
        assert large == 100 * small


class TestPairFlopBreakdown:
    def test_wraps_pair_counts(self):
        target = Graph.from_undirected_edges(4, [(0, 1), (1, 2)])
        query = Graph.from_undirected_edges(3, [(0, 1)])
        pair = GraphPair(target, query)
        breakdown = pair_flop_breakdown(pair, feature_dim=4)
        assert breakdown["match"] == 2 * 4 * 3 * 4
        assert breakdown["aggregate"] == 2 * (4 + 2) * 4

    def test_paper_example_100_nodes(self):
        """The intro's example: two 100-node/1000-edge graphs incur more
        than 10x the matching computation of intra-graph processing."""
        edges = [(i, (i + 1) % 100) for i in range(100)]
        # 1000 directed edges each ~ use denser rings
        target = Graph.from_undirected_edges(
            100, [(i, (i + k) % 100) for i in range(100) for k in range(1, 6)]
        )
        pair = GraphPair(target, target.copy())
        breakdown = pair_flop_breakdown(
            pair, feature_dim=64, combine_includes_weights=False
        )
        assert breakdown["match"] > 4 * (
            breakdown["aggregate"] + breakdown["combine"]
        )
