"""Tests for trace-file serialization."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.models import build_model
from repro.sim import AcceleratorSimulator, cegma_config
from repro.trace import profile_batches
from repro.trace.io import load_traces, save_traces


@pytest.fixture(scope="module")
def traces():
    pairs = load_dataset("AIDS", seed=0, num_pairs=4)
    model = build_model("GMN-Li", input_dim=pairs[0].target.feature_dim)
    return profile_batches(model, pairs, batch_size=2)


class TestRoundTrip:
    def test_structure_preserved(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert len(loaded) == len(traces)
        for original, restored in zip(traces, loaded):
            assert restored.batch.batch_size == original.batch.batch_size
            assert restored.model_name == original.model_name
            assert restored.num_layers == original.num_layers

    def test_tensors_bitwise_equal(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        original = traces[0].pair_traces[0]
        restored = loaded[0].pair_traces[0]
        assert restored.score == original.score
        assert restored.matching_usage == original.matching_usage
        assert np.array_equal(
            restored.pair.target.node_features,
            original.pair.target.node_features,
        )
        for layer_a, layer_b in zip(original.layers, restored.layers):
            assert np.array_equal(layer_a.target_features, layer_b.target_features)
            assert layer_a.flops.counts == layer_b.flops.counts

    def test_graph_topology_preserved(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        original = traces[0].pair_traces[0].pair.target
        restored = loaded[0].pair_traces[0].pair.target
        assert restored == original

    def test_labels_preserved(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        for batch_a, batch_b in zip(traces, loaded):
            for ta, tb in zip(batch_a.pair_traces, batch_b.pair_traces):
                assert ta.pair.label == tb.pair.label


class TestSimulationEquivalence:
    def test_simulator_results_identical(self, traces, tmp_path):
        """The whole point of trace files: simulating a loaded trace
        must give bit-identical platform results."""
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        sim = AcceleratorSimulator(cegma_config())
        a = sim.simulate_batches(traces)
        b = sim.simulate_batches(loaded)
        assert a.cycles == b.cycles
        assert a.dram_bytes == b.dram_bytes
        assert a.macs == b.macs


class TestValidation:
    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces([], tmp_path / "x.npz")

    def test_version_check(self, traces, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path, manifest=np.array(json.dumps({"version": 99, "batches": []}))
        )
        with pytest.raises(ValueError):
            load_traces(path)


class TestMmapReader:
    """Zero-copy loading through MmapNpzReader, in path and buffer mode."""

    def test_mmap_load_matches_eager_load(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path, compressed=False)
        eager = load_traces(path)
        mapped = load_traces(path, mmap=True)
        for batch_a, batch_b in zip(eager, mapped):
            for trace_a, trace_b in zip(
                batch_a.pair_traces, batch_b.pair_traces
            ):
                assert trace_a.score == trace_b.score
                for layer_a, layer_b in zip(trace_a.layers, trace_b.layers):
                    assert np.array_equal(
                        layer_a.target_features, layer_b.target_features
                    )
                    assert layer_a.flops.counts == layer_b.flops.counts

    def test_uncompressed_members_are_views(self, traces, tmp_path):
        from repro.trace.io import MmapNpzReader

        path = tmp_path / "traces.npz"
        save_traces(traces, path, compressed=False)
        reader = MmapNpzReader(path)
        name = next(
            key for key in reader.keys() if key.endswith("target_features")
        )
        array = reader[name]
        # A view over the mapped file, not a materialized copy.
        assert array.base is not None

    def test_compressed_members_fall_back(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path, compressed=True)
        mapped = load_traces(path, mmap=True)
        assert mapped[0].pair_traces[0].score == pytest.approx(
            traces[0].pair_traces[0].score
        )

    def test_requires_exactly_one_source(self, tmp_path):
        from repro.trace.io import MmapNpzReader

        with pytest.raises(ValueError):
            MmapNpzReader()
        with pytest.raises(ValueError):
            MmapNpzReader(tmp_path / "x.npz", buffer=b"PK")


class TestBufferTransport:
    """The shared-memory worker path: npz image bytes -> traces."""

    def test_round_trip_through_bytes(self, traces):
        from repro.trace.io import traces_from_buffer, traces_to_npz_bytes

        image = traces_to_npz_bytes(traces)
        rebuilt = traces_from_buffer(image)
        assert len(rebuilt) == len(traces)
        for batch_a, batch_b in zip(traces, rebuilt):
            for trace_a, trace_b in zip(
                batch_a.pair_traces, batch_b.pair_traces
            ):
                assert trace_a.score == trace_b.score
                assert trace_a.pair.target == trace_b.pair.target
                assert trace_a.pair.query == trace_b.pair.query
                for layer_a, layer_b in zip(trace_a.layers, trace_b.layers):
                    assert np.array_equal(
                        layer_a.query_features, layer_b.query_features
                    )

    def test_rebuilt_arrays_are_zero_copy_views(self, traces):
        from repro.trace.io import traces_from_buffer, traces_to_npz_bytes

        image = memoryview(traces_to_npz_bytes(traces))
        rebuilt = traces_from_buffer(image)
        features = rebuilt[0].pair_traces[0].layers[0].target_features
        assert features.base is not None

    def test_simulation_identical_from_buffer(self, traces):
        from repro.trace.io import traces_from_buffer, traces_to_npz_bytes

        sim = AcceleratorSimulator(cegma_config())
        direct = sim.simulate_batches(traces)
        rebuilt = sim.simulate_batches(
            traces_from_buffer(traces_to_npz_bytes(traces))
        )
        assert direct.to_dict() == rebuilt.to_dict()
