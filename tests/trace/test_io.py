"""Tests for trace-file serialization."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.models import build_model
from repro.sim import AcceleratorSimulator, cegma_config
from repro.trace import profile_batches
from repro.trace.io import load_traces, save_traces


@pytest.fixture(scope="module")
def traces():
    pairs = load_dataset("AIDS", seed=0, num_pairs=4)
    model = build_model("GMN-Li", input_dim=pairs[0].target.feature_dim)
    return profile_batches(model, pairs, batch_size=2)


class TestRoundTrip:
    def test_structure_preserved(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert len(loaded) == len(traces)
        for original, restored in zip(traces, loaded):
            assert restored.batch.batch_size == original.batch.batch_size
            assert restored.model_name == original.model_name
            assert restored.num_layers == original.num_layers

    def test_tensors_bitwise_equal(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        original = traces[0].pair_traces[0]
        restored = loaded[0].pair_traces[0]
        assert restored.score == original.score
        assert restored.matching_usage == original.matching_usage
        assert np.array_equal(
            restored.pair.target.node_features,
            original.pair.target.node_features,
        )
        for layer_a, layer_b in zip(original.layers, restored.layers):
            assert np.array_equal(layer_a.target_features, layer_b.target_features)
            assert layer_a.flops.counts == layer_b.flops.counts

    def test_graph_topology_preserved(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        original = traces[0].pair_traces[0].pair.target
        restored = loaded[0].pair_traces[0].pair.target
        assert restored == original

    def test_labels_preserved(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        for batch_a, batch_b in zip(traces, loaded):
            for ta, tb in zip(batch_a.pair_traces, batch_b.pair_traces):
                assert ta.pair.label == tb.pair.label


class TestSimulationEquivalence:
    def test_simulator_results_identical(self, traces, tmp_path):
        """The whole point of trace files: simulating a loaded trace
        must give bit-identical platform results."""
        path = tmp_path / "traces.npz"
        save_traces(traces, path)
        loaded = load_traces(path)
        sim = AcceleratorSimulator(cegma_config())
        a = sim.simulate_batches(traces)
        b = sim.simulate_batches(loaded)
        assert a.cycles == b.cycles
        assert a.dram_bytes == b.dram_bytes
        assert a.macs == b.macs


class TestValidation:
    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces([], tmp_path / "x.npz")

    def test_version_check(self, traces, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path, manifest=np.array(json.dumps({"version": 99, "batches": []}))
        )
        with pytest.raises(ValueError):
            load_traces(path)
