"""Tests for trace record structures."""

import numpy as np
import pytest

from repro.counters import FlopCounter
from repro.graphs import Graph, GraphPair
from repro.trace import LayerTrace, PairTrace


def _pair(n=4):
    g = Graph.from_undirected_edges(n, [(i, i + 1) for i in range(n - 1)])
    return GraphPair(g, g.copy())


def _layer(index=0, n=4, matching=True):
    flops = FlopCounter()
    flops.add("match" if matching else "combine", 100)
    return LayerTrace(
        layer_index=index,
        target_features=np.ones((n, 8)),
        query_features=np.ones((n, 8)),
        in_dim=8,
        out_dim=8,
        has_matching=matching,
        similarity="dot" if matching else None,
        flops=flops,
    )


class TestLayerTrace:
    def test_matching_pair_count(self):
        layer = _layer(n=5)
        assert layer.num_matching_pairs == 25

    def test_no_matching_no_pairs(self):
        layer = _layer(matching=False)
        assert layer.num_matching_pairs == 0


class TestPairTrace:
    def test_total_flops_merges_layers_and_readout(self):
        readout = FlopCounter()
        readout.add("other", 7)
        trace = PairTrace("m", _pair(), [_layer(0), _layer(1)], readout, 0.5)
        assert trace.total_flops.total == 207
        assert trace.total_flops.counts["other"] == 7

    def test_matching_layer_count(self):
        layers = [_layer(0, matching=False), _layer(1, matching=True)]
        trace = PairTrace("m", _pair(), layers, FlopCounter(), 0.5)
        assert trace.num_matching_layers == 1
        assert trace.total_matching_pairs == 16

    def test_default_matching_usage(self):
        trace = PairTrace("m", _pair(), [_layer()], FlopCounter(), 0.5)
        assert trace.matching_usage == "writeback"

    def test_invalid_matching_usage_rejected(self):
        with pytest.raises(ValueError):
            PairTrace(
                "m", _pair(), [_layer()], FlopCounter(), 0.5, "sideways"
            )

    def test_total_flops_does_not_mutate_readout(self):
        readout = FlopCounter()
        readout.add("other", 7)
        trace = PairTrace("m", _pair(), [_layer()], readout, 0.5)
        _ = trace.total_flops
        _ = trace.total_flops
        assert readout.counts["other"] == 7
