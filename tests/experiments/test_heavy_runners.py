"""Tests for the workload-heavy experiment runners (quick mode).

These share the memoized workload cache in ``repro.experiments.common``,
so the whole module costs roughly one sweep over models x datasets.
"""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def fig16():
    return run_experiment("fig16", quick=True)


@pytest.fixture(scope="module")
def fig17():
    return run_experiment("fig17", quick=True)


@pytest.fixture(scope="module")
def fig18():
    return run_experiment("fig18", quick=True)


@pytest.fixture(scope="module")
def fig19():
    return run_experiment("fig19", quick=True)


@pytest.fixture(scope="module")
def fig21():
    return run_experiment("fig21", quick=True)


class TestFig16:
    def test_cegma_fastest_everywhere(self, fig16):
        for model, per_dataset in fig16.data["speedups"].items():
            for dataset, speedups in per_dataset.items():
                assert speedups["CEGMA"] == max(speedups.values()), (
                    model,
                    dataset,
                )

    def test_mean_gains_in_paper_band(self, fig16):
        gains = fig16.data["cegma_mean_gain"]
        # Paper: 3139x / 353x / 8.4x / 6.5x. Accept the right order of
        # magnitude and the platform ordering.
        assert 500 < gains["PyG-CPU"] < 10000
        assert 100 < gains["PyG-GPU"] < 1000
        assert 3 < gains["HyGCN"] < 20
        assert 3 < gains["AWB-GCN"] < 15
        assert gains["PyG-CPU"] > gains["PyG-GPU"] > gains["HyGCN"] > 1

    def test_gmnli_gains_exceed_simgnn_on_average(self, fig16):
        """Layer-wise GMN-Li benefits more than model-wise SimGNN on
        average (the paper's 12.2x vs 2.2x contrast). Small embed-heavy
        datasets can locally invert this, so the claim is about means."""
        speedups = fig16.data["speedups"]

        def mean_gain(model):
            rows = speedups[model]
            return sum(
                rows[ds]["CEGMA"] / rows[ds]["AWB-GCN"] for ds in rows
            ) / len(rows)

        assert mean_gain("GMN-Li") > mean_gain("SimGNN")

    def test_speedup_grows_with_graph_size(self, fig16):
        speedups = fig16.data["speedups"]["GMN-Li"]

        def cegma_vs_awb(ds):
            return speedups[ds]["CEGMA"] / speedups[ds]["AWB-GCN"]

        assert cegma_vs_awb("RD-5K") > cegma_vs_awb("AIDS")


class TestFig17:
    def test_cegma_moves_least_data(self, fig17):
        for model, per_dataset in fig17.data["normalized"].items():
            for dataset, normalized in per_dataset.items():
                assert normalized["CEGMA"] < 1.0, (model, dataset)
                assert normalized["CEGMA"] <= normalized["AWB-GCN"] * 1.01

    def test_mean_reduction_band(self, fig17):
        # Paper: CEGMA at ~0.41 of HyGCN's DRAM traffic on average.
        assert 0.2 < fig17.data["cegma_mean"] < 0.8

    def test_gmnli_reduction_largest(self, fig17):
        normalized = fig17.data["normalized"]
        gmn = min(row["CEGMA"] for row in normalized["GMN-Li"].values())
        sim = min(row["CEGMA"] for row in normalized["SimGNN"].values())
        assert gmn < sim


class TestFig18:
    def test_removal_band_per_anchor(self, fig18):
        aids = fig18.data["AIDS"]
        rd5k = fig18.data["RD-5K"]
        aids_removed = 1 - sum(aids.values()) / len(aids)
        rd5k_removed = 1 - sum(rd5k.values()) / len(rd5k)
        assert 0.45 < aids_removed < 0.9  # paper: 67%
        assert rd5k_removed > 0.9  # paper: 97%

    def test_large_graphs_more_redundant(self, fig18):
        def removed(ds):
            row = fig18.data[ds]
            return 1 - sum(row.values()) / len(row)

        assert removed("RD-B") > removed("AIDS")
        assert removed("RD-5K") > removed("GITHUB")


class TestFig19:
    def test_cegma_saves_energy_everywhere(self, fig19):
        for model, per_dataset in fig19.data["normalized"].items():
            for dataset, normalized in per_dataset.items():
                assert normalized["CEGMA"] < 1.0, (model, dataset)

    def test_mean_band(self, fig19):
        # Paper: ~0.37 of HyGCN's energy.
        assert 0.2 < fig19.data["cegma_mean"] < 0.75


class TestFig21Ablation:
    def test_component_means_in_band(self, fig21):
        speed = fig21.data["mean_speedup"]
        # Paper: EMF 3.6x, CGC 2.9x, both below full CEGMA.
        assert 1.5 < speed["CEGMA-EMF"] < 15
        assert 1.5 < speed["CEGMA-CGC"] < 10
        assert speed["CEGMA"] >= max(speed["CEGMA-EMF"], speed["CEGMA-CGC"]) * 0.95

    def test_emf_gain_grows_with_graph_size(self, fig21):
        per_dataset = fig21.data["per_dataset"]
        assert (
            per_dataset["RD-5K"]["speedup"]["CEGMA-EMF"]
            > per_dataset["AIDS"]["speedup"]["CEGMA-EMF"]
        )

    def test_both_components_cut_dram(self, fig21):
        dram = fig21.data["mean_dram"]
        assert dram["CEGMA-EMF"] < 1.0
        assert dram["CEGMA-CGC"] < 1.0
        assert dram["CEGMA"] <= min(dram["CEGMA-EMF"], dram["CEGMA-CGC"]) * 1.05


class TestFig24AndFig25:
    def test_fig24_throughput_ordering(self):
        result = run_experiment("fig24", quick=True)
        ratios = result.data["cegma_ratio"]
        assert ratios["PyG-GPU"] > ratios["HyGCN"] > 1.0
        assert ratios["CEGMA"] == pytest.approx(1.0)

    def test_fig25_speedup_grows_with_size(self):
        result = run_experiment("fig25", quick=True)
        sizes = sorted(result.data)
        first, last = result.data[sizes[0]], result.data[sizes[-1]]
        assert last["AWB-GCN"] > first["AWB-GCN"] * 0.9
        assert all(row["AWB-GCN"] > 1.0 for row in result.data.values())

    def test_fig07_ratios_positive(self):
        result = run_experiment("fig07", quick=True)
        for dataset, per_model in result.data.items():
            for model, ratio in per_model.items():
                assert ratio > 0.0, (dataset, model)
