"""Tests for the experiment runners (quick mode).

Each runner must execute, produce a well-formed table, and satisfy the
paper's qualitative claims for its figure.
"""

import numpy as np
import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run the cheap experiments once and share across tests."""
    cheap = (
        "fig02",
        "fig03",
        "fig04",
        "fig08",
        "fig20",
        "fig23",
        "fig26",
        "table2",
    )
    return {name: run_experiment(name, quick=True) for name in cheap}


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "accuracy",
            "aoe_precision",
            "ablation_quantization",
            "ablation_buffer",
            "ablation_batch",
            "ablation_feature_dim",
            "ablation_bandwidth",
            "dataset_profile",
            "fig02",
            "fig03",
            "fig04",
            "fig07",
            "fig08",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "fig23",
            "fig24",
            "fig25",
            "fig26",
            "table2",
            "table3",
            "summary",
            "roofline",
            "future_batch_emf",
            "future_approximate_emf",
            "sensitivity",
            "seed_robustness",
            "serving",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_render_is_nonempty(self, results):
        for result in results.values():
            text = result.render()
            assert result.name in text
            assert len(text.splitlines()) >= 4


class TestFig02:
    def test_latency_grows_with_size(self, results):
        series = results["fig02"].data["series"]
        sizes = sorted(series)
        gpu = [series[s]["PyG-GPU"] for s in sizes]
        awb = [series[s]["AWB-GCN"] for s in sizes]
        assert gpu == sorted(gpu)
        assert awb == sorted(awb)

    def test_accelerator_faster_than_gpu(self, results):
        for row in results["fig02"].data["series"].values():
            assert row["AWB-GCN"] < row["PyG-GPU"]


class TestFig03:
    def test_matching_dominates_in_paper_mode(self, results):
        for dataset, row in results["fig03"].data.items():
            assert row["paper_mode"]["match"] > 0.5, dataset

    def test_matching_share_grows_with_graph_size(self, results):
        data = results["fig03"].data
        assert (
            data["RD-5K"]["literal_mode"]["match"]
            > data["AIDS"]["literal_mode"]["match"]
        )

    def test_shares_sum_to_one(self, results):
        for row in results["fig03"].data.values():
            for mode in ("paper_mode", "literal_mode"):
                assert sum(row[mode].values()) == pytest.approx(1.0)


class TestFig04AndFig20:
    def test_baseline_misses_dominate(self, results):
        for dataset, row in results["fig04"].data.items():
            assert row["hit_rate"] < 0.1, dataset

    def test_cegma_improves_every_dataset(self, results):
        for dataset, row in results["fig20"].data.items():
            baseline = results["fig04"].data[dataset]["hit_rate"]
            assert row["cegma_hit"] > baseline + 0.2, dataset

    def test_small_datasets_fully_captured(self, results):
        assert results["fig20"].data["AIDS"]["cegma_hit"] > 0.9


class TestFig08:
    def test_example_ordering(self, results):
        misses = results["fig08"].data["paper example"]
        assert misses["joint"] < misses["single"]
        assert misses["coordinated"] <= misses["joint"]
        assert abs(misses["single"] - misses["double"]) <= 3

    def test_dataset_workloads_follow_ordering(self, results):
        for workload, misses in results["fig08"].data.items():
            assert misses["coordinated"] < misses["single"], workload


class TestFig23:
    def test_overhead_under_paper_deadlines(self, results):
        for dataset, row in results["fig23"].data["per_dataset"].items():
            assert row["total_us"] < 20.0, dataset  # 20 ms deadline >> overhead

    def test_larger_graphs_cost_more_cycles(self, results):
        data = results["fig23"].data["per_dataset"]
        assert data["RD-5K"]["hashing"] > data["AIDS"]["hashing"]


class TestFig26:
    def test_emf_removes_majority_of_cells(self, results):
        data = results["fig26"].data
        assert data["after_cells"] < 0.5 * data["before_cells"]

    def test_render_dimensions(self, results):
        data = results["fig26"].data
        assert len(data["render_before"]) == len(data["render_after"])
        assert all(isinstance(line, str) for line in data["render_before"])


class TestTable2:
    def test_node_counts_close_to_paper(self, results):
        for name, row in results["table2"].data.items():
            assert row["nodes"] == pytest.approx(row["paper_nodes"], rel=0.25)
