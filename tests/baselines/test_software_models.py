"""Focused tests for the PyG-CPU / PyG-GPU latency models."""

import numpy as np
import pytest

from repro.baselines import SoftwarePlatformModel, pyg_cpu_model, pyg_gpu_model
from repro.graphs import GraphPair, random_graph
from repro.models import build_model


class TestFig2Anchors:
    """The GPU model is calibrated to the paper's Fig. 2 measurements."""

    @pytest.fixture(scope="class")
    def gmn_li_latency(self):
        rng = np.random.default_rng(0)
        model = build_model("GMN-Li")
        gpu = pyg_gpu_model()

        def latency(num_nodes):
            graph = random_graph(num_nodes, 4.0, rng)
            trace = model.forward_pair(GraphPair(graph, graph.copy()))
            return gpu.pair_latency_seconds(trace.total_flops.total, 5)

        return latency

    def test_1000_node_anchor(self, gmn_li_latency):
        # Paper: 33 ms per 1000-node pair on the V100.
        assert gmn_li_latency(1000) == pytest.approx(33e-3, rel=0.35)

    def test_superlinear_growth(self, gmn_li_latency):
        # Paper: 671 ms at 5000 nodes — ~20x the 1000-node latency.
        ratio = gmn_li_latency(2000) / gmn_li_latency(1000)
        assert ratio > 2.5  # quadratic matching term dominates

    def test_cpu_to_gpu_ratio(self, gmn_li_latency):
        """The paper's 3139x/353x means the CPU is ~9x the GPU."""
        rng = np.random.default_rng(1)
        model = build_model("GMN-Li")
        graph = random_graph(500, 4.0, rng)
        trace = model.forward_pair(GraphPair(graph, graph.copy()))
        flops = trace.total_flops.total
        cpu = pyg_cpu_model().pair_latency_seconds(flops, 5)
        gpu = pyg_gpu_model().pair_latency_seconds(flops, 5)
        assert 3 < cpu / gpu < 30


class TestModelStructure:
    def test_dispatch_floor_scales_with_layers(self):
        model = pyg_gpu_model()
        assert model.pair_latency_seconds(0, 10) == pytest.approx(
            2 * model.pair_latency_seconds(0, 5)
        )

    def test_energy_is_tdp_times_time(self):
        from repro.experiments.common import workload_traces

        traces = list(workload_traces("SimGNN", "AIDS", 2, 2, 0))
        model = pyg_gpu_model()
        result = model.simulate_batches(traces)
        assert result.energy_joules == pytest.approx(
            model.tdp_watts * result.latency_seconds
        )

    def test_macs_accumulated(self):
        from repro.experiments.common import workload_traces

        traces = list(workload_traces("SimGNN", "AIDS", 2, 2, 0))
        result = pyg_cpu_model().simulate_batches(traces)
        expected = sum(
            trace.total_flops.total / 2.0
            for batch in traces
            for trace in batch.pair_traces
        )
        assert result.macs == pytest.approx(expected)

    def test_zero_overhead_model_is_pure_roofline(self):
        model = SoftwarePlatformModel("x", 1e9, 0.0, ops_per_layer=0)
        assert model.pair_latency_seconds(2e9, 5) == pytest.approx(2.0)
