"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, so PEP 517
editable installs fail; this shim lets ``pip install -e .`` fall back to
``setup.py develop``. All project metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CEGMA: Coordinated Elastic Graph Matching Acceleration for Graph "
        "Matching Networks (HPCA 2023) - full Python reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
    entry_points={
        "console_scripts": ["cegma-repro = repro.__main__:main"],
    },
)
