# Convenience targets for the CEGMA reproduction.

PYTHON ?= python

.PHONY: install test bench examples experiments summary clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

experiments:
	$(PYTHON) -m repro experiments all

summary:
	$(PYTHON) -m repro experiments summary

artifacts:
	$(PYTHON) -m repro experiments all > results/all_experiments.txt
	$(PYTHON) -m repro experiments summary --output results/summary.json

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
