# Convenience targets for the CEGMA reproduction.

PYTHON ?= python

.PHONY: install test test-all lint bench bench-quick bench-search bench-compare bench-trend examples experiments summary clean

install:
	pip install -e .

# Default run excludes tests marked "slow" (pyproject addopts).
test:
	$(PYTHON) -m pytest tests/

# Everything, including the slow equivalence sweeps.
test-all:
	$(PYTHON) -m pytest tests/ -m ""

# Same check CI runs (pip install ruff).
lint:
	ruff check src tests

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# EMF + harness microbenchmarks; writes BENCH_emf.json / BENCH_harness.json
# and appends each run to results/obs/bench_history/.
bench-quick:
	$(PYTHON) -m repro.perf.bench --quick

# Serving-pipeline benchmark (flat query loop vs. staged pipeline);
# writes BENCH_search.json with queries/sec and p50/p99 latency.
bench-search:
	$(PYTHON) -m repro.perf.bench --quick --only search

# Gate the newest recorded bench run against its config-matching
# predecessor: exit 1 on deterministic check drift, 2 on a statistical
# timing regression (or no comparable baseline).
bench-compare:
	$(PYTHON) -m repro obs bench compare

# Per-metric history with changepoints marked.
bench-trend:
	$(PYTHON) -m repro obs bench trend

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

experiments:
	$(PYTHON) -m repro experiments all

summary:
	$(PYTHON) -m repro experiments summary

artifacts:
	$(PYTHON) -m repro experiments all > results/all_experiments.txt
	$(PYTHON) -m repro experiments summary --output results/summary.json

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
